//! Shared plumbing for the EPRONS figure-regeneration harness.
//!
//! Every figure of the paper's evaluation has a binary in `src/bin/`
//! (`fig01` … `fig15`) that regenerates its rows/series with this crate's
//! simulators. Conventions:
//!
//! * pass `--quick` (or set `EPRONS_QUICK=1`) for a shorter, noisier run;
//! * pass `--journal <path>` to enable telemetry and dump the structured
//!   run journal as JSON-lines when the binary finishes (via [`finish`]);
//! * output goes through `eprons_core::report::Table` so EXPERIMENTS.md
//!   can quote it verbatim;
//! * all runs are deterministic from [`BASE_SEED`].

use std::path::PathBuf;

use eprons_core::config::ClusterConfig;
use eprons_core::report::{journal_kind_table_with_drops, metrics_table};

pub mod harness;
pub mod obsctl;

/// Master seed shared by the harness binaries.
pub const BASE_SEED: u64 = 2018;

/// `true` when the caller asked for a fast, lower-fidelity run.
pub fn quick() -> bool {
    std::env::args().any(|a| a == "--quick")
        || std::env::var("EPRONS_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Simulated seconds of query arrivals per sweep point.
pub fn sweep_duration_s() -> f64 {
    if quick() {
        5.0
    } else {
        20.0
    }
}

/// The default cluster configuration with the SLA total replaced
/// (constraint sweeps keep the 5 ms network budget and move the server
/// budget, like the paper's Figs. 12b/13).
pub fn cfg_with_total_ms(total_ms: f64) -> ClusterConfig {
    let mut cfg = ClusterConfig::default();
    cfg.sla = cfg.sla.with_total(total_ms * 1.0e-3);
    cfg
}

/// Formats an optional rate as a percentage with two decimals, or `n/a`
/// when no completions produced a rate at all (e.g. a zero-completion
/// epoch under `--quick` durations). Table cells must never panic on an
/// empty measurement.
pub fn pct_or_na(rate: Option<f64>) -> String {
    match rate {
        Some(r) => format!("{:.2}", r * 100.0),
        None => "n/a".to_string(),
    }
}

/// The `--journal <path>` (or `--journal=<path>`) argument, if given.
pub fn journal_path() -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if a == "--journal" {
            match args.get(i + 1) {
                Some(p) => return Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --journal requires a path");
                    std::process::exit(2);
                }
            }
        }
        if let Some(p) = a.strip_prefix("--journal=") {
            return Some(PathBuf::from(p));
        }
    }
    None
}

/// Standard harness banner. Enables telemetry when `--journal` was given,
/// so every layer's events land in the journal [`finish`] writes out.
pub fn banner(fig: &str, what: &str) {
    if let Some(path) = journal_path() {
        eprons_obs::set_enabled(true);
        println!("   (journaling to {})", path.display());
    }
    println!("== EPRONS reproduction: {fig} — {what} ==");
    println!(
        "   (seed {BASE_SEED}, {} mode)\n",
        if quick() { "quick" } else { "full" }
    );
}

/// Harness epilogue: when `--journal <path>` was given, writes the run
/// journal as JSON-lines to that path and prints the event/metric summary
/// tables. A no-op otherwise.
pub fn finish() {
    let Some(path) = journal_path() else {
        return;
    };
    let journal = eprons_obs::journal();
    match journal.write_jsonl(&path) {
        Ok(n) => println!("\nwrote {n} journal events to {}", path.display()),
        Err(e) => {
            eprintln!("failed to write journal to {}: {e}", path.display());
            std::process::exit(1);
        }
    }
    println!(
        "{}",
        journal_kind_table_with_drops(&journal.snapshot(), journal.dropped())
    );
    println!("{}", metrics_table(&eprons_obs::registry().snapshot()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_duration_modes() {
        // Not running with --quick in the test harness.
        assert!(sweep_duration_s() > 0.0);
    }

    #[test]
    fn pct_or_na_formats_and_degrades() {
        assert_eq!(pct_or_na(Some(0.0512)), "5.12");
        assert_eq!(pct_or_na(Some(0.0)), "0.00");
        assert_eq!(pct_or_na(None), "n/a");
    }

    #[test]
    fn cfg_with_total_keeps_network_budget() {
        let cfg = cfg_with_total_ms(22.0);
        assert!((cfg.sla.total_s() - 22.0e-3).abs() < 1e-9);
        assert!((cfg.sla.network_budget_s - 5.0e-3).abs() < 1e-12);
    }
}
