//! Shared plumbing for the EPRONS figure-regeneration harness.
//!
//! Every figure of the paper's evaluation has a binary in `src/bin/`
//! (`fig01` … `fig15`) that regenerates its rows/series with this crate's
//! simulators. Conventions:
//!
//! * pass `--quick` (or set `EPRONS_QUICK=1`) for a shorter, noisier run;
//! * output goes through `eprons_core::report::Table` so EXPERIMENTS.md
//!   can quote it verbatim;
//! * all runs are deterministic from [`BASE_SEED`].

use eprons_core::config::ClusterConfig;

/// Master seed shared by the harness binaries.
pub const BASE_SEED: u64 = 2018;

/// `true` when the caller asked for a fast, lower-fidelity run.
pub fn quick() -> bool {
    std::env::args().any(|a| a == "--quick")
        || std::env::var("EPRONS_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Simulated seconds of query arrivals per sweep point.
pub fn sweep_duration_s() -> f64 {
    if quick() {
        5.0
    } else {
        20.0
    }
}

/// The default cluster configuration with the SLA total replaced
/// (constraint sweeps keep the 5 ms network budget and move the server
/// budget, like the paper's Figs. 12b/13).
pub fn cfg_with_total_ms(total_ms: f64) -> ClusterConfig {
    let mut cfg = ClusterConfig::default();
    cfg.sla = cfg.sla.with_total(total_ms * 1.0e-3);
    cfg
}

/// Standard harness banner.
pub fn banner(fig: &str, what: &str) {
    println!("== EPRONS reproduction: {fig} — {what} ==");
    println!(
        "   (seed {BASE_SEED}, {} mode)\n",
        if quick() { "quick" } else { "full" }
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_duration_modes() {
        // Not running with --quick in the test harness.
        assert!(sweep_duration_s() > 0.0);
    }

    #[test]
    fn cfg_with_total_keeps_network_budget() {
        let cfg = cfg_with_total_ms(22.0);
        assert!((cfg.sla.total_s() - 22.0e-3).abs() < 1e-9);
        assert!((cfg.sla.network_budget_s - 5.0e-3).abs() < 1e-12);
    }
}
