//! Figure 3 — the high-level idea of EPRONS-Server, made concrete.
//!
//! The paper's Fig. 3 sketches four queued requests (R1–R4) under the
//! prior policy (every request finishes before the deadline; only the
//! limiting one just-in-time) vs. EPRONS-Server (requests finish *around*
//! the deadline; the average tail meets the constraint). This harness
//! replays exactly that scene: four simultaneous requests, one queue, and
//! the per-request finish times under max-VP vs. average-VP selection.

use eprons_bench::{banner, BASE_SEED};
use eprons_core::report::Table;
use eprons_server::policy::DvfsPolicy;
use eprons_server::{
    simulate_core, ArrivalSpec, AvgVpPolicy, CoreSimConfig, MaxVpPolicy, ServiceModel, VpEngine,
};
use eprons_sim::SimRng;

fn main() {
    banner(
        "Fig. 3",
        "four queued requests: just-in-time vs average-tail",
    );
    let mut rng = SimRng::seed_from_u64(BASE_SEED);
    let service = ServiceModel::synthetic_xapian(&mut rng, 30_000, 160);
    let cfg = CoreSimConfig::default();
    // Four requests land together with an 18 ms budget — tight enough
    // that the queue's equivalent distributions force real frequency
    // choices (the Fig. 3 situation).
    let arrivals: Vec<ArrivalSpec> = (0..4)
        .map(|i| ArrivalSpec {
            arrival_s: 0.0,
            budget_s: 22.0e-3,
            tag: i,
        })
        .collect();

    let run = |policy: &mut dyn DvfsPolicy, seed: u64| {
        let mut engine = VpEngine::new(service.clone());
        simulate_core(policy, &mut engine, &arrivals, &cfg, seed)
    };
    let prior = run(&mut MaxVpPolicy::rubik_plus(), 5);
    let eprons = run(&mut AvgVpPolicy::eprons(), 5);

    let mut t = Table::new(
        "finish time relative to the 22 ms deadline (ms; negative = early)",
        &["request", "prior (max-VP)", "eprons (avg-VP)"],
    );
    for i in 0..4u64 {
        let find = |r: &eprons_server::CoreSimResult| {
            r.tags
                .iter()
                .position(|&tg| tg == i)
                .map(|p| (r.latencies[p] - 22.0e-3) * 1.0e3)
                .expect("completed")
        };
        t.row(&[
            format!("R{}", i + 1),
            format!("{:+.2}", find(&prior)),
            format!("{:+.2}", find(&eprons)),
        ]);
    }
    println!("{t}");
    println!(
        "energy for the burst: prior {:.3} J vs eprons {:.3} J (lower = slower = cheaper)",
        prior.energy_j, eprons.energy_j
    );
    println!("paper shape: under the prior policy every request lands early (wasted energy);");
    println!("EPRONS-Server lets requests finish closer to — some beyond — the deadline,");
    println!("with the average tail still inside the constraint");
    eprons_bench::finish();
}
