//! Flash-crowd day: the online controller vs. the epoch-batch loop on an
//! adversarial trace.
//!
//! The day is hostile on purpose: a flash crowd erupts mid-morning on
//! top of the diurnal search load (40-minute ramp to +45 % of peak, held
//! 80 minutes, 60-minute decay) and two core switches die during the
//! ramp — exactly when marginal hardware is being woken — recovering
//! ~40 minutes later. The epoch-batch loop re-optimizes every epoch from
//! scratch and flaps switches as the surge sweeps demand through the
//! candidate thresholds. The online controller (hysteresis priced by the
//! §IV-B transition model + bounded deferral of latency-tolerant
//! background demand) should ride through the same day with materially
//! less churn at no total-energy premium.
//!
//! Asserted contract (the PR's headline number, gated in CI via the
//! committed `BENCH_flashcrowd.json`):
//!
//! * switch churn (on+off toggles) drops by >= 30 % vs. epoch-batch;
//! * day total energy *including* transition energy is no worse;
//! * the online day misses the SLA on no more epochs than batch.
//!
//! The online timeline lands in `results/flashcrowd_day.csv` (bit-identical
//! across reruns and thread budgets — the online loop is sequential and
//! the epoch internals are determinism-hardened), and the metrics land in
//! `BENCH_flashcrowd.json` for the CI regression gate.

use eprons_bench::{banner, finish, quick, BASE_SEED};
use eprons_core::controller::{
    day_churn_count, day_total_energy_j, day_transition_energy_j, save_day_csv, DayConfig,
    DayRecord,
};
use eprons_core::optimizer::aggregation_candidates;
use eprons_core::report::Table;
use eprons_core::{
    simulate_day_with_failures, ClusterConfig, DayStrategy, FailureEvent, FailureEventKind,
    FailureSchedule, FlashCrowd, OnlineConfig, TraceScenario,
};
use eprons_sim::SimRng;
use eprons_topo::FatTree;
use eprons_workload::correlated_failures_during_ramp;

/// Day total energy plus the transition energy its churn would cost on
/// real hardware — the fair currency for a controller that trades
/// reconfigurations against steady-state draw.
fn total_energy_j(records: &[DayRecord], day: &DayConfig, cfg: &ClusterConfig) -> f64 {
    day_total_energy_j(records, day) + day_transition_energy_j(records, &cfg.failure.transition)
}

fn sla_miss_epochs(records: &[DayRecord]) -> usize {
    records.iter().filter(|r| !r.feasible).count()
}

/// The `--out <path>` (or `--out=<path>`) argument; defaults to the
/// committed `BENCH_flashcrowd.json` (CI quick runs point elsewhere so
/// they never clobber the full-run artifact the gate reads).
fn out_arg() -> std::path::PathBuf {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if a == "--out" {
            match args.get(i + 1) {
                Some(p) => return p.into(),
                None => {
                    eprintln!("error: --out requires a path");
                    std::process::exit(2);
                }
            }
        }
        if let Some(p) = a.strip_prefix("--out=") {
            return p.into();
        }
    }
    "BENCH_flashcrowd.json".into()
}

fn main() {
    banner(
        "Flash-crowd day",
        "online hysteresis + deferral vs. epoch-batch on an adversarial trace",
    );
    let cfg = ClusterConfig::default();
    let crowd = FlashCrowd::reference();
    let window = crowd.ramp_window();
    println!(
        "flash crowd: +{:.0}% of peak, ramp [{}, {}) min, decay by minute {}",
        crowd.surge * 100.0,
        window.0,
        window.1,
        window.1 + crowd.decay_minutes
    );

    // Two core switches die during the ramp (correlated with the surge —
    // marginal hardware fails when it is being woken) and recover ~40
    // minutes later. Both strategies replay the identical schedule.
    let topo = FatTree::new(cfg.fat_tree_k, cfg.link_capacity_mbps);
    let cores: Vec<usize> = topo.core_switches().iter().map(|n| n.0).collect();
    let failures = correlated_failures_during_ramp(
        window,
        &cores,
        2,
        40.0,
        &mut SimRng::seed_from_u64(BASE_SEED ^ 0xf1a5),
    );
    let mut events = Vec::with_capacity(failures.len() * 2);
    for f in &failures {
        println!(
            "injecting: switch {} fails at minute {:.1}, recovers at {:.1}",
            f.switch,
            f.fail_minute,
            f.fail_minute + f.downtime_minutes
        );
        events.push(FailureEvent {
            minute: f.fail_minute,
            switch: f.switch,
            kind: FailureEventKind::Fail,
        });
        events.push(FailureEvent {
            minute: f.fail_minute + f.downtime_minutes,
            switch: f.switch,
            kind: FailureEventKind::Recover,
        });
    }
    let schedule = FailureSchedule::scripted(events);

    let batch_day = DayConfig {
        // Hourly reconfiguration, like the paper's day replays (fig15,
        // failure_day); quick mode only cheapens the queue simulation.
        epoch_minutes: 60,
        sim_seconds: if quick() { 2.0 } else { 4.0 },
        peak_utilization: 0.5,
        seed: BASE_SEED,
        warm_start: true,
        search_trace: TraceScenario::FlashCrowd(crowd),
        ..DayConfig::default()
    };
    let online_day = DayConfig {
        online: Some(OnlineConfig::enabled()),
        ..batch_day.clone()
    };
    let strategy = DayStrategy::Eprons {
        candidates: aggregation_candidates(),
    };

    let batch = simulate_day_with_failures(&cfg, &strategy, &batch_day, &schedule);
    let online = simulate_day_with_failures(&cfg, &strategy, &online_day, &schedule);
    assert_eq!(batch.len(), online.len());

    let mut t = Table::new(
        "epoch-batch vs online on the flash-crowd day",
        &[
            "minute", "load", "batch-W", "online-W", "b-sw", "o-sw", "held", "defer", "drain", "ok",
        ],
    );
    for (b, o) in batch.iter().zip(&online) {
        t.row(&[
            format!("{:.0}", o.minute),
            format!("{:.2}", o.search_load),
            format!("{:.0}", b.breakdown.total_w()),
            format!("{:.0}", o.breakdown.total_w()),
            format!("{}", b.active_switches),
            format!("{}", o.active_switches),
            if o.held_by_hysteresis { "H" } else { "-" }.into(),
            format!("{:.0}", o.deferred_mbps_min),
            format!("{:.0}", o.drained_mbps_min),
            format!("{}", o.feasible),
        ]);
    }
    println!("{t}");

    let churn_batch = day_churn_count(&batch);
    let churn_online = day_churn_count(&online);
    let reduction = 1.0 - churn_online as f64 / churn_batch.max(1) as f64;
    let batch_j = total_energy_j(&batch, &batch_day, &cfg);
    let online_j = total_energy_j(&online, &online_day, &cfg);
    let miss_batch = sla_miss_epochs(&batch);
    let miss_online = sla_miss_epochs(&online);
    let holds = online.iter().filter(|r| r.held_by_hysteresis).count();
    let deferred: f64 = online.iter().map(|r| r.deferred_mbps_min).sum();
    let drained: f64 = online.iter().map(|r| r.drained_mbps_min).sum();

    println!(
        "churn:  batch {churn_batch} toggles, online {churn_online} \
         (-{:.0}%, {holds} hysteresis hold(s))",
        reduction * 100.0
    );
    println!(
        "energy: batch {batch_j:.0} J, online {online_j:.0} J \
         ({:+.3}% incl. transition energy)",
        (online_j / batch_j - 1.0) * 100.0
    );
    println!(
        "SLA:    batch misses {miss_batch} epoch(s), online misses {miss_online}; \
         deferred {deferred:.0} mbps-min, drained {drained:.0}"
    );

    // --- The PR's contract, asserted hard. ---
    const CHURN_TARGET: f64 = 0.30;
    assert!(
        reduction >= CHURN_TARGET,
        "online churn reduction {:.1}% below the {:.0}% target",
        reduction * 100.0,
        CHURN_TARGET * 100.0
    );
    assert!(
        online_j <= batch_j * (1.0 + 1.0e-6),
        "online day costs more energy: {online_j:.0} J vs batch {batch_j:.0} J"
    );
    assert!(
        miss_online <= miss_batch,
        "online day misses SLA on more epochs ({miss_online}) than batch ({miss_batch})"
    );
    println!("\ncontract holds: >=30% churn cut, energy no worse, SLA no worse");

    std::fs::create_dir_all("results").expect("create results/");
    let csv = std::path::Path::new("results/flashcrowd_day.csv");
    save_day_csv(&online, csv).expect("write timeline CSV");
    println!("timeline written to {}", csv.display());

    // Machine-readable artifact for the CI gate (committed from a full
    // run as BENCH_flashcrowd.json).
    let json = format!(
        "{{\n  \"schema\": \"eprons.bench.flashcrowd/v1\",\n  \"quick\": {},\n  \
         \"seed\": {BASE_SEED},\n  \"epoch_minutes\": {},\n  \
         \"batch\": {{ \"churn\": {churn_batch}, \"energy_j\": {batch_j:.1}, \
         \"sla_miss_epochs\": {miss_batch} }},\n  \
         \"online\": {{ \"churn\": {churn_online}, \"energy_j\": {online_j:.1}, \
         \"sla_miss_epochs\": {miss_online}, \"holds\": {holds}, \
         \"deferred_mbps_min\": {deferred:.1}, \"drained_mbps_min\": {drained:.1} }},\n  \
         \"churn_reduction\": {reduction:.4},\n  \
         \"energy_ratio\": {:.6},\n  \
         \"target\": {CHURN_TARGET},\n  \"met\": {}\n}}\n",
        quick(),
        batch_day.epoch_minutes,
        online_j / batch_j,
        reduction >= CHURN_TARGET && online_j <= batch_j * (1.0 + 1.0e-6),
    );
    let out = out_arg();
    std::fs::write(&out, json).unwrap_or_else(|e| {
        eprintln!("failed to write {}: {e}", out.display());
        std::process::exit(1);
    });
    println!("metrics written to {}", out.display());
    finish();
}
