//! Figure 10 — query network latency under different degrees of
//! aggregation.
//!
//! (a) 20 % background traffic: average / 95th / 99th-percentile network
//!     latency per aggregation level (paper: 99th grows from 5.64 ms at
//!     aggregation 0 to 25.74 ms at aggregation 3);
//! (b) 95th-percentile tail per level for background traffic 5–50 %.
//!
//! Network latency is per *query* (max over the 15 ISNs of request+reply —
//! the partition–aggregate straggler).
//!
//! Each background level is one scenario; the four aggregation candidates
//! share its [`ScenarioContext`], so the sweep builds 5 workloads instead
//! of 24.

use eprons_bench::{banner, sweep_duration_s, BASE_SEED};
use eprons_core::report::{ms, Table};
use eprons_core::scenario::{ScenarioContext, ScenarioSpec};
use eprons_core::{ClusterConfig, ConsolidationSpec, ServerScheme};
use eprons_topo::AggregationLevel;

fn context(cfg: &ClusterConfig, bg: f64) -> ScenarioContext {
    ScenarioContext::build(
        cfg,
        &ScenarioSpec {
            server_utilization: 0.3,
            background_util: bg,
            duration_s: sweep_duration_s(),
            warmup_s: 0.0,
            seed: BASE_SEED,
        },
    )
}

fn run(ctx: &ScenarioContext, level: AggregationLevel) -> eprons_core::ClusterRunResult {
    ctx.evaluate(
        ServerScheme::NoPowerManagement, // Fig. 10 measures the network only
        ConsolidationSpec::Level(level),
    )
    .expect("aggregation routing always places flows")
}

fn main() {
    banner("Fig. 10", "query network latency vs aggregation level");
    let cfg = ClusterConfig::default();

    let mut a = Table::new(
        "(a) network latency at 20% background traffic (ms)",
        &["aggregation", "avg", "p95", "p99"],
    );
    let ctx20 = context(&cfg, 0.2);
    for level in AggregationLevel::ALL {
        let r = run(&ctx20, level);
        a.row(&[
            format!("{}", level.index()),
            ms(r.net_latency.mean_s),
            ms(r.net_latency.p95_s),
            ms(r.net_latency.p99_s),
        ]);
    }
    println!("{a}");
    println!("paper anchors (a): 99th grows ≈5.64 ms (agg 0) → ≈25.74 ms (agg 3)\n");

    let mut b = Table::new(
        "(b) 95th-percentile network latency (ms) vs background traffic",
        &["aggregation", "5%", "10%", "20%", "30%", "50%"],
    );
    let contexts: Vec<ScenarioContext> = [0.05, 0.10, 0.20, 0.30, 0.50]
        .iter()
        .map(|&bg| context(&cfg, bg))
        .collect();
    for level in AggregationLevel::ALL {
        let mut cells = vec![format!("{}", level.index())];
        for ctx in &contexts {
            let r = run(ctx, level);
            cells.push(ms(r.net_latency.p95_s));
        }
        b.row(&cells);
    }
    println!("{b}");
    println!("paper shape (b): the 95th tail rises with aggregation at every background level,");
    println!("and rises with background traffic at every aggregation level");
    eprons_bench::finish();
}
