//! Figure 10 — query network latency under different degrees of
//! aggregation.
//!
//! (a) 20 % background traffic: average / 95th / 99th-percentile network
//!     latency per aggregation level (paper: 99th grows from 5.64 ms at
//!     aggregation 0 to 25.74 ms at aggregation 3);
//! (b) 95th-percentile tail per level for background traffic 5–50 %.
//!
//! Network latency is per *query* (max over the 15 ISNs of request+reply —
//! the partition–aggregate straggler).

use eprons_bench::{banner, sweep_duration_s, BASE_SEED};
use eprons_core::report::{ms, Table};
use eprons_core::{run_cluster, ClusterConfig, ClusterRun, ConsolidationSpec, ServerScheme};
use eprons_topo::AggregationLevel;

fn run(level: AggregationLevel, bg: f64) -> eprons_core::ClusterRunResult {
    let cfg = ClusterConfig::default();
    run_cluster(
        &cfg,
        &ClusterRun {
            scheme: ServerScheme::NoPowerManagement, // Fig. 10 measures the network only
            consolidation: ConsolidationSpec::Level(level),
            server_utilization: 0.3,
            background_util: bg,
            duration_s: sweep_duration_s(),
            warmup_s: 0.0,
            seed: BASE_SEED,
        },
    )
    .expect("aggregation routing always places flows")
}

fn main() {
    banner("Fig. 10", "query network latency vs aggregation level");

    let mut a = Table::new(
        "(a) network latency at 20% background traffic (ms)",
        &["aggregation", "avg", "p95", "p99"],
    );
    for level in AggregationLevel::ALL {
        let r = run(level, 0.2);
        a.row(&[
            format!("{}", level.index()),
            ms(r.net_latency.mean_s),
            ms(r.net_latency.p95_s),
            ms(r.net_latency.p99_s),
        ]);
    }
    println!("{a}");
    println!("paper anchors (a): 99th grows ≈5.64 ms (agg 0) → ≈25.74 ms (agg 3)\n");

    let mut b = Table::new(
        "(b) 95th-percentile network latency (ms) vs background traffic",
        &["aggregation", "5%", "10%", "20%", "30%", "50%"],
    );
    for level in AggregationLevel::ALL {
        let mut cells = vec![format!("{}", level.index())];
        for bg in [0.05, 0.10, 0.20, 0.30, 0.50] {
            let r = run(level, bg);
            cells.push(ms(r.net_latency.p95_s));
        }
        b.row(&cells);
    }
    println!("{b}");
    println!("paper shape (b): the 95th tail rises with aggregation at every background level,");
    println!("and rises with background traffic at every aggregation level");
    eprons_bench::finish();
}
