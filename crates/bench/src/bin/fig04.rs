//! Figure 4 — energy-saving opportunity of the *average* tail latency.
//!
//! Two requests are queued: R1 and R2 (whose equivalent request R2e is the
//! convolution of both work distributions). The paper plots VP vs.
//! frequency for R1, R2e, and their average: `f1 < f_new < f2`, where `f2`
//! is Rubik's (max-VP) choice and `f_new` is EPRONS-Server's (avg-VP)
//! choice — the gap is the energy saving.

use eprons_bench::{banner, BASE_SEED};
use eprons_core::report::Table;
use eprons_server::policy::DvfsPolicy;
use eprons_server::{AvgVpPolicy, FreqLadder, MaxVpPolicy, ServiceModel, VpEngine};
use eprons_sim::SimRng;

fn main() {
    banner("Fig. 4", "VP vs frequency for R1 / R2e / average");
    let mut rng = SimRng::seed_from_u64(BASE_SEED);
    let service = ServiceModel::synthetic_xapian(&mut rng, 30_000, 160);
    let mut engine = VpEngine::new(service);
    let ladder = FreqLadder::paper_default();

    // R1 roomy, R2 tight (but satisfiable) — the Fig. 4 situation.
    let deadlines = [28.0e-3, 20.0e-3];
    let decision = engine.decision(0.0, None, &deadlines);

    let mut t = Table::new(
        "violation probability vs frequency (target miss rate 5%)",
        &["freq-GHz", "VP(R1)%", "VP(R2e)%", "avg-VP%"],
    );
    for &f in ladder.steps() {
        t.row(&[
            format!("{f:.1}"),
            format!("{:.2}", decision.vp(0, f) * 100.0),
            format!("{:.2}", decision.vp(1, f) * 100.0),
            format!("{:.2}", decision.avg_vp(f) * 100.0),
        ]);
    }
    println!("{t}");

    let f1 = ladder.lowest_satisfying(|f| decision.vp(0, f) <= 0.05);
    let f2 = ladder.lowest_satisfying(|f| decision.max_vp(f) <= 0.05);
    let fnew = AvgVpPolicy::eprons().choose_frequency(0.0, &decision, &ladder);
    let frubik = MaxVpPolicy::rubik().choose_frequency(0.0, &decision, &ladder);
    println!("f1 (R1 alone)        = {f1:.1} GHz");
    println!("f2 (Rubik, max VP)   = {f2:.1} GHz  (policy choice {frubik:.1})");
    println!("f_new (EPRONS, avg)  = {fnew:.1} GHz");
    println!("paper shape: f1 <= f_new <= f2, with f_new strictly below f2 when slack is uneven");
    eprons_bench::finish();
}
