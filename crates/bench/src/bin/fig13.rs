//! Figure 13 — total system power vs. tail-latency constraint under the
//! four aggregation levels, at (a) 1 %, (b) 20 %, (c) 50 % background
//! traffic. Server utilization 30 %, EPRONS-Server on the servers.
//!
//! Paper shape: power falls as the constraint loosens; more aggressive
//! aggregation saves network power but loses feasibility at tight
//! constraints (aggregation 3 needs ≥29 ms at 20 % background and is
//! infeasible at 50 %); between ~29–31 ms, *turning a switch on*
//! (aggregation 3 → 2) lowers **total** power because the extra network
//! slack lets EPRONS-Server run slower — the paper's headline insight.
//!
//! One [`ScenarioContext`] per background panel: the whole 8-constraint ×
//! 5-configuration grid reuses that build, swapping only the SLA
//! ([`ScenarioContext::with_sla`]) — 3 workload builds for 120 runs.

use eprons_bench::{banner, cfg_with_total_ms, sweep_duration_s, BASE_SEED};
use eprons_core::report::Table;
use eprons_core::scenario::{ScenarioContext, ScenarioSpec};
use eprons_core::{ConsolidationSpec, ServerScheme};
use eprons_topo::AggregationLevel;

const CONSTRAINTS_MS: [f64; 8] = [19.0, 22.0, 25.0, 28.0, 31.0, 34.0, 37.0, 40.0];

fn main() {
    banner(
        "Fig. 13",
        "total system power vs constraint × aggregation × background",
    );
    for (label, bg) in [("(a) 1%", 0.01), ("(b) 20%", 0.2), ("(c) 50%", 0.5)] {
        let base = ScenarioContext::build(
            &cfg_with_total_ms(CONSTRAINTS_MS[0]),
            &ScenarioSpec {
                server_utilization: 0.3,
                background_util: bg,
                duration_s: sweep_duration_s(),
                warmup_s: 0.0,
                seed: BASE_SEED,
            },
        );
        let mut t = Table::new(
            format!("{label} background traffic — total power (W); '-' = SLA infeasible"),
            &["constraint-ms", "no-pm", "agg0", "agg1", "agg2", "agg3"],
        );
        for &total in &CONSTRAINTS_MS {
            let cfg = cfg_with_total_ms(total);
            let ctx = base.with_sla(cfg.sla.clone());
            let mut row = vec![format!("{total:.0}")];
            // The no-power-management reference.
            let nopm = ctx
                .evaluate(ServerScheme::NoPowerManagement, ConsolidationSpec::AllOn)
                .expect("all-on never fails");
            row.push(format!("{:.0}", nopm.breakdown.total_w()));
            for level in AggregationLevel::ALL {
                let r = ctx
                    .evaluate(ServerScheme::EpronsServer, ConsolidationSpec::Level(level))
                    .expect("aggregation routing places all flows");
                if r.is_feasible(&cfg) {
                    row.push(format!("{:.0}", r.breakdown.total_w()));
                } else {
                    row.push(format!("-({:.0})", r.breakdown.total_w()));
                }
            }
            t.row(&row);
        }
        println!("{t}");
    }
    println!("paper shape: deeper aggregation = lower total power where feasible;");
    println!("aggregation 3 loses feasibility first as background traffic grows;");
    println!("near the feasibility edge, stepping back to aggregation 2 (turning switches ON)");
    println!("yields lower total power than an infeasible-or-strained aggregation 3");
    eprons_bench::finish();
}
