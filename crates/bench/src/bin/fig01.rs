//! Figure 1 — link utilization vs. network latency (the queueing knee).
//!
//! Paper: "the network latency is well behaved at low link utilization
//! (e.g. 20%) … the latency grows quickly from 139 µs to 11.981 ms beyond
//! this threshold."
//!
//! This harness sweeps a single link's utilization and reports both the
//! model mean and the sampled mean (50 k draws per point), plus tail
//! percentiles, so the knee is visible exactly as in Fig. 1.

use eprons_bench::{banner, quick, BASE_SEED};
use eprons_core::report::Table;
use eprons_net::LatencyModel;
use eprons_sim::SimRng;

fn main() {
    banner("Fig. 1", "utilization→latency knee on a single link");
    let model = LatencyModel::default();
    let mut rng = SimRng::seed_from_u64(BASE_SEED);
    let draws = if quick() { 5_000 } else { 50_000 };

    let mut t = Table::new(
        "single-link latency vs utilization (µs)",
        &["util%", "model-mean", "sampled-mean", "p95", "p99"],
    );
    for util in [
        0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.85, 0.9, 0.95, 0.98,
    ] {
        let mut samples: Vec<f64> = (0..draws)
            .map(|_| model.sample_path_latency_us(&mut rng, &[util]))
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let p = |q: f64| samples[((samples.len() - 1) as f64 * q) as usize];
        t.row(&[
            format!("{:.0}", util * 100.0),
            format!("{:.0}", model.per_hop_mean_us(util)),
            format!("{mean:.0}"),
            format!("{:.0}", p(0.95)),
            format!("{:.0}", p(0.99)),
        ]);
    }
    println!("{t}");
    println!(
        "paper anchors: flat region ≈139 µs; past the knee ≈11981 µs (here: {:.0} µs at 98%)",
        model.per_hop_mean_us(0.98)
    );
    eprons_bench::finish();
}
