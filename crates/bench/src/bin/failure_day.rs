//! Fault-injected diurnal day: graceful degradation under a mid-day
//! core-switch failure (§IV-B's "backup paths" remark, exercised).
//!
//! Replays the Fig. 15 EPRONS day twice — failure-free, and with a core
//! switch dying at 12:10 and recovering at 12:50 — and prints the
//! degraded timeline: which epoch was hit, which degradation-ladder rung
//! handled it (in-epoch repair / reconsolidation / all-on fallback), the
//! boot energy charged for woken backups, and the total-energy premium
//! the failure costs. Asserts the paper-level contract: the failed epoch
//! never violates the SLA silently, and the failure day costs strictly
//! more energy than the clean one (hung-switch draw + boot transients).
//!
//! The full timeline lands in `results/failure_day.csv`; two invocations
//! with the same seed are bit-identical.
//!
//! `--k <arity>` (or `--k=<arity>`) replays the day on a larger fat-tree
//! (default 4). The per-pair query demand is rescaled so total egress
//! per host stays within the edge-uplink budget — at the default demand
//! the all-pairs flow count oversubscribes uplinks once k ≥ 8.

use eprons_bench::{banner, finish, quick, BASE_SEED};
use eprons_core::controller::{day_total_energy_j, save_day_csv, DayConfig};
use eprons_core::optimizer::{aggregation_candidates, scale_factor_candidates};
use eprons_core::report::Table;
use eprons_core::{
    simulate_day, simulate_day_with_failures, ClusterConfig, DayStrategy, FailureEvent,
    FailureEventKind, FailureSchedule,
};
use eprons_topo::FatTree;

/// The `--k <arity>` (or `--k=<arity>`) argument, if given.
fn k_arg() -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    let parse = |s: &str| {
        s.parse::<usize>()
            .ok()
            .filter(|k| *k >= 4 && k % 2 == 0)
            .unwrap_or_else(|| {
                eprintln!("error: --k requires an even fat-tree arity >= 4, got {s:?}");
                std::process::exit(2);
            })
    };
    for (i, a) in args.iter().enumerate() {
        if a == "--k" {
            let Some(v) = args.get(i + 1) else {
                eprintln!("error: --k requires an arity");
                std::process::exit(2);
            };
            return Some(parse(v));
        }
        if let Some(v) = a.strip_prefix("--k=") {
            return Some(parse(v));
        }
    }
    None
}

fn main() {
    banner(
        "Failure day",
        "fault-injected diurnal day with graceful degradation (§IV-B)",
    );
    let mut cfg = ClusterConfig::default();
    if let Some(k) = k_arg() {
        cfg.fat_tree_k = k;
    }
    // Hold total query egress per host at 300 Mbps: one flow per peer
    // means per-flow demand must shrink as the host count grows, or the
    // K-scaled aggregate oversubscribes the 1 Gbps edge uplinks at k>=8.
    // At k=4 the cap is not binding, so the default day is untouched.
    let n = cfg.num_servers() as f64;
    cfg.query_flow_mbps = cfg.query_flow_mbps.min(300.0 / (n - 1.0));
    println!(
        "fat-tree k = {} ({} servers)\n",
        cfg.fat_tree_k,
        cfg.num_servers()
    );
    // From k = 12 up the default Auto strategy consolidates pod-by-pod,
    // so a K-ladder candidate set routes every epoch plan — and the
    // rung-2 masked replan after the failure — through the hierarchical
    // decomposition (pod-masked repair: re-solve the failed pod, serve
    // the rest from the epoch's PodSolveCache). The aggregation presets
    // stay at small k, where Auto is monolithic and the presets are the
    // paper's Fig. 15 day. The quick day is coarser at large k so the
    // CI journal-audit pass at k=16 (1024 servers) stays affordable.
    let large_k = cfg.fat_tree_k >= 12;
    let day = DayConfig {
        epoch_minutes: match (quick(), large_k) {
            (true, true) => 240,
            (true, false) => 120,
            (false, _) => 60,
        },
        sim_seconds: match (quick(), large_k) {
            (true, true) => 1.0,
            (true, false) => 2.0,
            (false, _) => 4.0,
        },
        peak_utilization: 0.5,
        seed: BASE_SEED,
        warm_start: true,
        ..DayConfig::default()
    };
    let strategy = DayStrategy::Eprons {
        candidates: if large_k {
            scale_factor_candidates(2)
        } else {
            aggregation_candidates()
        },
    };

    // The victim: core(0,0) is active in every aggregation preset, so the
    // failure always hits the chosen configuration. Fail at 12:10 and
    // recover at 12:50 — inside one epoch for both epoch lengths.
    let ft = FatTree::new(cfg.fat_tree_k, cfg.link_capacity_mbps);
    let core = ft.core(0, 0).0;
    let schedule = FailureSchedule::scripted(vec![
        FailureEvent {
            minute: 730.0,
            switch: core,
            kind: FailureEventKind::Fail,
        },
        FailureEvent {
            minute: 770.0,
            switch: core,
            kind: FailureEventKind::Recover,
        },
    ]);
    println!("injecting: switch {core} (core 0,0) fails at minute 730, recovers at 770\n");

    let baseline = simulate_day(&cfg, &strategy, &day);
    let degraded = simulate_day_with_failures(&cfg, &strategy, &day, &schedule);

    let mut t = Table::new(
        "degraded vs clean EPRONS day",
        &[
            "minute",
            "clean-W",
            "failed-W",
            "switches",
            "failed-sw",
            "stage",
            "boot-J",
            "feasible",
        ],
    );
    for (b, d) in baseline.iter().zip(&degraded) {
        t.row(&[
            format!("{:.0}", d.minute),
            format!("{:.0}", b.breakdown.total_w()),
            format!("{:.0}", d.breakdown.total_w()),
            format!("{}", d.active_switches),
            if d.failed_switches.is_empty() {
                "-".into()
            } else {
                d.failed_switches
                    .iter()
                    .map(|s| s.to_string())
                    .collect::<Vec<_>>()
                    .join(";")
            },
            d.degradation.map_or("-".into(), |s| s.label().to_string()),
            format!("{:.0}", d.boot_energy_j),
            format!("{}", d.feasible),
        ]);
    }
    println!("{t}");

    let base_j = day_total_energy_j(&baseline, &day);
    let deg_j = day_total_energy_j(&degraded, &day);
    println!("clean day:   {base_j:>12.0} J");
    println!(
        "failure day: {deg_j:>12.0} J  (+{:.0} J / +{:.4}% — hung-switch draw + boot energy)",
        deg_j - base_j,
        (deg_j / base_j - 1.0) * 100.0
    );

    // --- The §IV-B contract, asserted hard. ---
    let hit: Vec<_> = degraded
        .iter()
        .filter(|r| !r.failed_switches.is_empty())
        .collect();
    assert_eq!(hit.len(), 1, "the scripted failure spans exactly one epoch");
    let r = hit[0];
    assert!(
        r.degradation.is_some(),
        "the failed epoch must record its degradation rung"
    );
    assert!(
        r.boot_energy_j > 0.0,
        "repair/recovery must charge boot energy"
    );
    for (b, d) in baseline.iter().zip(&degraded) {
        assert!(
            d.feasible || d.degradation.is_some() || !b.feasible,
            "minute {}: SLA violated silently",
            d.minute
        );
    }
    assert!(
        deg_j > base_j,
        "failure day must cost more energy than the clean day"
    );
    println!(
        "\ncontract holds: failed epoch handled via '{}' rung, no silent SLA loss",
        r.degradation.expect("asserted above").label()
    );

    std::fs::create_dir_all("results").expect("create results/");
    let csv = std::path::Path::new("results/failure_day.csv");
    save_day_csv(&degraded, csv).expect("write timeline CSV");
    println!("timeline written to {}", csv.display());
    finish();
}
