//! Replay day: day-scoped incremental evaluation vs. per-epoch rebuild
//! on a committed production-shaped trace.
//!
//! The day replays `data/replay_qps.trace` — a bursty high-QPS search
//! day with long plateaus and three demand bursts — plus the matching
//! background-batch trace through the online controller on a k=16
//! fat-tree, with a core switch dying inside the midday burst (minute
//! 730, recovering at 770). Both runs use day-scope semantics (constant
//! master seed, demand snapped to the warm-start grid), so they evaluate
//! bit-identical epoch specs; they differ only in *how* each epoch's
//! context is produced:
//!
//! * **rebuild** — `DayScopeConfig { incremental: false }`: every epoch
//!   rebuilds its `ScenarioContext` from scratch (the baseline);
//! * **incremental** — `DayScopeConfig { incremental: true }`: epochs
//!   draw contexts from the day's [`DayContext`] LRU (plan caches and
//!   pod-solve cache surviving across epochs) and per-ISN server
//!   evaluations hit the process-wide memo.
//!
//! Asserted contract (gated in CI via the committed `BENCH_replay.json`):
//!
//! * the incremental day's total energy is **bit-identical** to the
//!   rebuild day's (`f64::to_bits`, per-epoch and day-total) — caching
//!   must be invisible in results;
//! * full mode only: incremental wall-clock is >= 4x faster than
//!   per-epoch rebuild.
//!
//! The incremental timeline lands in `results/replay_day.csv`
//! (bit-identical across reruns), and the metrics land in
//! `BENCH_replay.json` for the CI regression gate.

use std::time::Instant;

use eprons_bench::harness::{format_secs, Runner, Sample};
use eprons_bench::{banner, finish, quick, BASE_SEED};
use eprons_core::controller::{day_total_energy_j, save_day_csv, DayConfig, DayRecord};
use eprons_core::optimizer::{aggregation_candidates, scale_factor_candidates};
use eprons_core::report::Table;
use eprons_core::{
    simulate_day_with_failures, ClusterConfig, DayScopeConfig, DayStrategy, FailureEvent,
    FailureEventKind, FailureSchedule, OnlineConfig, ReplayTrace, TraceScenario,
};
use eprons_obs::Json;
use eprons_topo::FatTree;

/// The `--k <arity>` (or `--k=<arity>`) argument; defaults to 16 (the
/// headline 1024-server replay).
fn k_arg() -> usize {
    let args: Vec<String> = std::env::args().collect();
    let parse = |s: &str| {
        s.parse::<usize>()
            .ok()
            .filter(|k| *k >= 4 && k % 2 == 0)
            .unwrap_or_else(|| {
                eprintln!("error: --k requires an even fat-tree arity >= 4, got {s:?}");
                std::process::exit(2);
            })
    };
    for (i, a) in args.iter().enumerate() {
        if a == "--k" {
            let Some(v) = args.get(i + 1) else {
                eprintln!("error: --k requires an arity");
                std::process::exit(2);
            };
            return parse(v);
        }
        if let Some(v) = a.strip_prefix("--k=") {
            return parse(v);
        }
    }
    16
}

/// The `--out <path>` (or `--out=<path>`) argument; defaults to the
/// committed `BENCH_replay.json` (CI quick runs point elsewhere so they
/// never clobber the full-run artifact the gate reads).
fn out_arg() -> std::path::PathBuf {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if a == "--out" {
            match args.get(i + 1) {
                Some(p) => return p.into(),
                None => {
                    eprintln!("error: --out requires a path");
                    std::process::exit(2);
                }
            }
        }
        if let Some(p) = a.strip_prefix("--out=") {
            return p.into();
        }
    }
    "BENCH_replay.json".into()
}

/// Times one full day simulation and records it as a one-shot sample.
/// A day is far too expensive to iterate, so the harness's warm-up +
/// repeat loop is skipped; `single_sample` marks the degenerate spread.
fn time_day(
    r: &mut Runner,
    name: &str,
    cfg: &ClusterConfig,
    strategy: &DayStrategy,
    day: &DayConfig,
    schedule: &FailureSchedule,
) -> (Vec<DayRecord>, f64) {
    let t0 = Instant::now();
    let records = simulate_day_with_failures(cfg, strategy, day, schedule);
    let dt = t0.elapsed().as_secs_f64();
    println!("{name:<44} {:>8} iters  wall {:>12}", 1, format_secs(dt));
    r.samples.push(Sample {
        name: name.to_string(),
        iters: 1,
        mean_s: dt,
        min_s: dt,
        max_s: dt,
    });
    (records, dt)
}

fn counter(name: &str) -> u64 {
    eprons_obs::registry().counter(name).get()
}

fn main() {
    banner(
        "Replay day",
        "incremental day-scoped evaluation vs per-epoch rebuild on a committed trace",
    );
    // Telemetry stays on even without --journal: the artifact reports
    // the day-cache counters, which only tick while obs is enabled. The
    // overhead applies to both timed runs equally.
    eprons_obs::set_enabled(true);

    let qps = ReplayTrace::load(std::path::Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/data/replay_qps.trace"
    )))
    .expect("load replay_qps.trace");
    let bg = ReplayTrace::load(std::path::Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/data/replay_bg.trace"
    )))
    .expect("load replay_bg.trace");

    let mut cfg = ClusterConfig {
        fat_tree_k: k_arg(),
        ..ClusterConfig::default()
    };
    // Same egress cap as failure_day: one flow per peer means per-flow
    // demand must shrink as the host count grows, or the K-scaled
    // aggregate oversubscribes the 1 Gbps edge uplinks at k >= 8.
    let n = cfg.num_servers() as f64;
    cfg.query_flow_mbps = cfg.query_flow_mbps.min(300.0 / (n - 1.0));
    println!(
        "fat-tree k = {} ({} servers)",
        cfg.fat_tree_k,
        cfg.num_servers()
    );

    // A core switch dies inside the midday burst and recovers 40 minutes
    // later; both runs replay the identical schedule.
    let ft = FatTree::new(cfg.fat_tree_k, cfg.link_capacity_mbps);
    let core = ft.core(0, 0).0;
    let schedule = FailureSchedule::scripted(vec![
        FailureEvent {
            minute: 730.0,
            switch: core,
            kind: FailureEventKind::Fail,
        },
        FailureEvent {
            minute: 770.0,
            switch: core,
            kind: FailureEventKind::Recover,
        },
    ]);
    println!("injecting: switch {core} (core 0,0) fails at minute 730, recovers at 770\n");

    let large_k = cfg.fat_tree_k >= 12;
    let rebuild_day = DayConfig {
        // Full mode reconfigures on the paper's 10-minute optimization
        // period (§IV-B) — 144 epochs, where a plateau-heavy production
        // day revisits the same few operating points over and over and
        // per-epoch rebuild is almost entirely redundant work. Quick
        // mode coarsens to 6 epochs for the CI smoke pass.
        epoch_minutes: if quick() { 240 } else { 10 },
        sim_seconds: match (quick(), large_k) {
            (true, _) => 0.5,
            (false, true) => 1.0,
            (false, false) => 2.0,
        },
        peak_utilization: 0.5,
        seed: BASE_SEED,
        warm_start: true,
        search_trace: TraceScenario::Replay(qps),
        background_trace: TraceScenario::Replay(bg),
        online: Some(OnlineConfig::enabled()),
        day_scope: Some(DayScopeConfig {
            incremental: false,
            ..DayScopeConfig::default()
        }),
    };
    let incremental_day = DayConfig {
        day_scope: Some(DayScopeConfig::default()),
        ..rebuild_day.clone()
    };
    let strategy = DayStrategy::Eprons {
        candidates: if large_k {
            scale_factor_candidates(2)
        } else {
            aggregation_candidates()
        },
    };

    // The incremental day runs first: any process warm-up benefit (page
    // tables, allocator arenas) then accrues to the rebuild baseline,
    // making the reported speedup conservative.
    let mut r = Runner::new(0.0, 1);
    let dc_hits0 = counter("core.daycache.hits");
    let dc_misses0 = counter("core.daycache.misses");
    let dc_evict0 = counter("core.daycache.evictions");
    let ec_hits0 = counter("core.evalcache.hits");
    let ec_misses0 = counter("core.evalcache.misses");
    let (incremental, incremental_s) = time_day(
        &mut r,
        "day_replay/incremental",
        &cfg,
        &strategy,
        &incremental_day,
        &schedule,
    );
    let dc_hits = counter("core.daycache.hits") - dc_hits0;
    let dc_misses = counter("core.daycache.misses") - dc_misses0;
    let dc_evictions = counter("core.daycache.evictions") - dc_evict0;
    let ec_hits = counter("core.evalcache.hits") - ec_hits0;
    let ec_misses = counter("core.evalcache.misses") - ec_misses0;
    let sv = eprons_server::serveval_memo_stats();
    let (rebuild, rebuild_s) = time_day(
        &mut r,
        "day_replay/rebuild",
        &cfg,
        &strategy,
        &rebuild_day,
        &schedule,
    );
    assert_eq!(rebuild.len(), incremental.len());

    let mut t = Table::new(
        "rebuild vs incremental on the replay day",
        &["minute", "load", "bg", "rebuild-W", "incr-W", "sw", "ok"],
    );
    for (b, i) in rebuild.iter().zip(&incremental) {
        t.row(&[
            format!("{:.0}", i.minute),
            format!("{:.2}", i.search_load),
            format!("{:.2}", i.background_util),
            format!("{:.0}", b.breakdown.total_w()),
            format!("{:.0}", i.breakdown.total_w()),
            format!("{}", i.active_switches),
            format!("{}", i.feasible),
        ]);
    }
    println!("{t}");

    // --- Bit identity: caching must be invisible in results. ---
    let rebuild_j = day_total_energy_j(&rebuild, &rebuild_day);
    let incremental_j = day_total_energy_j(&incremental, &incremental_day);
    let mut bit_identical = rebuild_j.to_bits() == incremental_j.to_bits();
    for (e, (b, i)) in rebuild.iter().zip(&incremental).enumerate() {
        let same = b.breakdown.total_w().to_bits() == i.breakdown.total_w().to_bits()
            && b.active_switches == i.active_switches
            && b.feasible == i.feasible;
        if !same {
            eprintln!(
                "epoch {e} (minute {:.0}): rebuild {} W / {} sw, incremental {} W / {} sw",
                b.minute,
                b.breakdown.total_w(),
                b.active_switches,
                i.breakdown.total_w(),
                i.active_switches,
            );
            bit_identical = false;
        }
    }
    assert!(
        bit_identical,
        "incremental day diverged from the rebuild baseline \
         (rebuild {rebuild_j} J vs incremental {incremental_j} J)"
    );

    let speedup = rebuild_s / incremental_s;
    let sv_total = sv.hits + sv.misses;
    let sv_rate = sv.hits as f64 / sv_total.max(1) as f64;
    println!(
        "wall:     rebuild {}, incremental {} ({speedup:.2}x)",
        format_secs(rebuild_s),
        format_secs(incremental_s)
    );
    println!("energy:   {rebuild_j:.1} J, bit-identical across modes");
    println!(
        "serveval: {} hits / {} misses ({:.1}% hit rate, {} entries, {:.1} MiB)",
        sv.hits,
        sv.misses,
        sv_rate * 100.0,
        sv.entries,
        sv.bytes as f64 / (1024.0 * 1024.0)
    );
    println!("daycache: {dc_hits} hits / {dc_misses} misses / {dc_evictions} evictions");
    println!("evalcache: {ec_hits} hits / {ec_misses} misses");

    const SPEEDUP_TARGET: f64 = 4.0;
    let met = bit_identical && speedup >= SPEEDUP_TARGET;

    std::fs::create_dir_all("results").expect("create results/");
    let csv = std::path::Path::new("results/replay_day.csv");
    save_day_csv(&incremental, csv).expect("write timeline CSV");
    println!("timeline written to {}", csv.display());

    // Machine-readable artifact for the CI gate (committed from a full
    // run as BENCH_replay.json).
    let report = Json::Obj(vec![
        ("schema".into(), Json::Str("eprons.bench.replay/v1".into())),
        ("quick".into(), Json::Bool(quick())),
        ("seed".into(), Json::Num(BASE_SEED as f64)),
        ("k".into(), Json::Num(cfg.fat_tree_k as f64)),
        (
            "epoch_minutes".into(),
            Json::Num(rebuild_day.epoch_minutes as f64),
        ),
        ("suites".into(), r.to_json()),
        (
            "speedup".into(),
            Json::Obj(vec![
                ("incremental_over_rebuild".into(), Json::Num(speedup)),
                ("target".into(), Json::Num(SPEEDUP_TARGET)),
                ("met".into(), Json::Bool(met)),
            ]),
        ),
        (
            "serveval".into(),
            Json::Obj(vec![
                ("hits".into(), Json::Num(sv.hits as f64)),
                ("misses".into(), Json::Num(sv.misses as f64)),
                ("hit_rate".into(), Json::Num(sv_rate)),
            ]),
        ),
        (
            "daycache".into(),
            Json::Obj(vec![
                ("hits".into(), Json::Num(dc_hits as f64)),
                ("misses".into(), Json::Num(dc_misses as f64)),
                ("evictions".into(), Json::Num(dc_evictions as f64)),
            ]),
        ),
        (
            "evalcache".into(),
            Json::Obj(vec![
                ("hits".into(), Json::Num(ec_hits as f64)),
                ("misses".into(), Json::Num(ec_misses as f64)),
            ]),
        ),
        ("bit_identical".into(), Json::Bool(bit_identical)),
        ("energy_j".into(), Json::Num(rebuild_j)),
    ]);
    let out = out_arg();
    std::fs::write(&out, format!("{report}\n")).unwrap_or_else(|e| {
        eprintln!("failed to write {}: {e}", out.display());
        std::process::exit(1);
    });
    println!("metrics written to {}", out.display());
    finish();

    // The wall-clock contract is asserted last so a miss still leaves
    // the artifact, timeline, and journal on disk for diagnosis.
    if quick() {
        println!("\n(quick mode: {SPEEDUP_TARGET}x wall-clock target reported, not asserted)");
    } else {
        assert!(
            speedup >= SPEEDUP_TARGET,
            "incremental speedup {speedup:.2}x below the {SPEEDUP_TARGET}x target"
        );
        println!("\ncontract holds: bit-identical energy, >={SPEEDUP_TARGET}x wall-clock");
    }
}
