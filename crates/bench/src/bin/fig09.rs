//! Figure 9 — the four consolidated topologies (aggregation 0–3).
//!
//! "From Aggregation 0 to Aggregation 3, we gradually turn off the
//! core-level switches and the corresponding aggregation-level switches."
//! This harness prints, per level, the active switch/link counts and which
//! switches are powered down, and verifies all-pairs host connectivity.

use eprons_bench::banner;
use eprons_core::report::Table;
use eprons_net::NetworkPowerModel;
use eprons_topo::paths::bfs_path;
use eprons_topo::{AggregationLevel, FatTree, NodeId};

fn main() {
    banner("Fig. 9", "aggregation presets on the 4-ary fat-tree");
    let ft = FatTree::new(4, 1000.0);
    let power = NetworkPowerModel::default();

    let mut t = Table::new(
        "active elements per aggregation level",
        &[
            "level",
            "switches",
            "links",
            "net-power-W",
            "connected",
            "off-switches",
        ],
    );
    for level in AggregationLevel::ALL {
        let active = level.active_switches(&ft);
        let links = level.active_links(&ft);
        let off: Vec<String> = ft
            .topology()
            .switches()
            .into_iter()
            .filter(|s| !active.contains(s))
            .map(|s| ft.topology().node(s).name.clone())
            .collect();
        // All-pairs connectivity on the active subgraph.
        let ok = |n: NodeId| !ft.topology().node(n).kind.is_switch() || active.contains(&n);
        let hosts = ft.hosts();
        let connected = hosts
            .iter()
            .skip(1)
            .all(|&d| bfs_path(ft.topology(), hosts[0], d, ok, |l| links.contains(&l)).is_some());
        t.row(&[
            format!("{}", level.index()),
            format!("{}", active.len()),
            format!("{}", links.len()),
            format!("{:.0}", power.power_w_for_counts(active.len(), links.len())),
            format!("{connected}"),
            if off.is_empty() {
                "-".to_string()
            } else {
                off.join(",")
            },
        ]);
    }
    println!("{t}");
    println!(
        "paper shape: 20 → 18 → 14 → 13 active switches, all levels keep full host connectivity"
    );
    eprons_bench::finish();
}
