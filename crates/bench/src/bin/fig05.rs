//! Figure 5 — violation probability of equivalent requests vs. work done
//! by the deadline ω(D).
//!
//! The paper plots the CCDF of three equivalent distributions (R1e, R2e,
//! R3e): "finding the VP is simply finding the corresponding y on a line
//! given the x" (eq. 1 + CCDF). Deeper queue positions shift the curves
//! right (more total work ahead of the deadline).

use eprons_bench::{banner, BASE_SEED};
use eprons_core::report::Table;
use eprons_server::{ServiceModel, VpEngine};
use eprons_sim::SimRng;

fn main() {
    banner(
        "Fig. 5",
        "CCDF of equivalent work distributions R1e/R2e/R3e",
    );
    let mut rng = SimRng::seed_from_u64(BASE_SEED);
    let service = ServiceModel::synthetic_xapian(&mut rng, 30_000, 160);
    let mut engine = VpEngine::new(service);

    let r1 = engine.equivalent(1).clone();
    let r2 = engine.equivalent(2).clone();
    let r3 = engine.equivalent(3).clone();

    // Express ω(D) in "cycles at f_max for X ms" units for readability.
    let mut t = Table::new(
        "violation probability (%) vs work done at deadline ω(D)",
        &["omega (ms @ 2.7GHz)", "R1e", "R2e", "R3e"],
    );
    for ms in [2.0, 4.0, 6.0, 8.0, 12.0, 16.0, 20.0, 24.0, 30.0, 40.0] {
        let omega = 2.7 * ms * 1.0e-3; // giga-cycles
        t.row(&[
            format!("{ms:.0}"),
            format!("{:.2}", r1.ccdf(omega) * 100.0),
            format!("{:.2}", r2.ccdf(omega) * 100.0),
            format!("{:.2}", r3.ccdf(omega) * 100.0),
        ]);
    }
    println!("{t}");
    println!(
        "means: R1e={:.1} R2e={:.1} R3e={:.1} ms of work @ f_max (paper shape: curves shift right with queue depth)",
        r1.mean() / 2.7 * 1.0e3,
        r2.mean() / 2.7 * 1.0e3,
        r3.mean() / 2.7 * 1.0e3
    );
    eprons_bench::finish();
}
