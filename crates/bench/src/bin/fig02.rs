//! Figure 2 — the scale factor K on the Fig. 2 scenario.
//!
//! Paper setup: 4-ary fat-tree, 1 Gbps links, 50 Mbps safety margin; one
//! 900 Mbps latency-tolerant elephant (red) and two 20 Mbps
//! latency-sensitive flows (green, blue). With K=1 everything shares one
//! subtree (minimum switches); K=2 forces one query flow onto a new path;
//! K=3 separates both.

use eprons_bench::banner;
use eprons_core::report::Table;
use eprons_net::flow::FlowSet;
use eprons_net::{
    ConsolidationConfig, Consolidator, FlowClass, FlowId, GreedyConsolidator, NetworkPowerModel,
    PathMilpConsolidator,
};
use eprons_topo::FatTree;

fn main() {
    banner(
        "Fig. 2",
        "scale factor K vs active switches (3-flow scenario)",
    );
    let ft = FatTree::new(4, 1000.0);
    let mut flows = FlowSet::new();
    let red = flows.add(
        ft.host(0, 0, 0),
        ft.host(1, 0, 0),
        900.0,
        FlowClass::LatencyTolerant,
    );
    let green = flows.add(
        ft.host(0, 0, 1),
        ft.host(1, 0, 1),
        20.0,
        FlowClass::LatencySensitive,
    );
    let blue = flows.add(
        ft.host(0, 1, 0),
        ft.host(1, 1, 0),
        20.0,
        FlowClass::LatencySensitive,
    );
    let power = NetworkPowerModel::default();

    let mut t = Table::new(
        "active switches and flow separation vs K (MILP = exact eqs. 2-9; greedy = deployed heuristic)",
        &[
            "K",
            "milp-switches",
            "greedy-switches",
            "milp-power-W",
            "greedy-power-W",
            "green-shares-red",
            "blue-shares-red",
        ],
    );
    for k in [1.0, 2.0, 3.0] {
        let cfg = ConsolidationConfig::with_k(k);
        let milp = PathMilpConsolidator::default()
            .consolidate(&ft, &flows, &cfg)
            .expect("fig2 instance is feasible");
        milp.validate(&ft, &flows, &cfg)
            .expect("milp respects capacity");
        let heur = GreedyConsolidator
            .consolidate(&ft, &flows, &cfg)
            .expect("fig2 instance is feasible");
        heur.validate(&ft, &flows, &cfg)
            .expect("greedy respects capacity");
        let shares = |a: &eprons_net::Assignment, f: FlowId| {
            let e = a.path(red);
            a.path(f).links.iter().any(|l| e.links.contains(l))
        };
        t.row(&[
            format!("{k:.0}"),
            format!("{}", milp.active_switch_count(&ft)),
            format!("{}", heur.active_switch_count(&ft)),
            format!("{:.0}", milp.network_power_w(&ft, &power)),
            format!("{:.0}", heur.network_power_w(&ft, &power)),
            format!("{}", shares(&heur, green)),
            format!("{}", shares(&heur, blue)),
        ]);
    }
    println!("{t}");
    println!(
        "paper shape: switches grow with K; at K=3 both query flows leave the elephant's path"
    );
    eprons_bench::finish();
}
