//! Figure 14 — the 24-hour diurnal traces (search load and background
//! traffic) that drive the Fig. 15 experiment.
//!
//! Paper: both traces span one 24 h period and follow a diurnal pattern
//! (search load ≈20–100 % of peak; background ≈10–50 % of bandwidth).

use eprons_bench::{banner, BASE_SEED};
use eprons_core::report::Table;
use eprons_sim::SimRng;
use eprons_workload::diurnal::DiurnalProfile;

fn main() {
    banner(
        "Fig. 14",
        "diurnal search-load and background-traffic traces",
    );
    let mut rng = SimRng::seed_from_u64(BASE_SEED);
    let search = DiurnalProfile::search_load().sample_day(&mut rng);
    let bg =
        DiurnalProfile::background_traffic().sample_day(&mut SimRng::seed_from_u64(BASE_SEED + 1));

    let mut t = Table::new(
        "hourly trace values",
        &["hour", "search-load-%of-peak", "background-%of-bw"],
    );
    for h in 0..24 {
        let m = h * 60 + 30;
        t.row(&[
            format!("{h:02}:30"),
            format!("{:.0}", search[m] * 100.0),
            format!("{:.0}", bg[m] * 100.0),
        ]);
    }
    println!("{t}");
    let min = search.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = search.iter().cloned().fold(0.0, f64::max);
    let bmin = bg.iter().cloned().fold(f64::INFINITY, f64::min);
    let bmax = bg.iter().cloned().fold(0.0, f64::max);
    println!(
        "search swing {:.0}%–{:.0}% of peak; background {:.0}%–{:.0}% of bandwidth",
        min * 100.0,
        max * 100.0,
        bmin * 100.0,
        bmax * 100.0
    );
    println!("paper shape: diurnal swing with trough at night and peak in the afternoon/evening");
    eprons_bench::finish();
}
