//! Figure 8 — switch power vs. link utilization (HPE E3800 J9574A).
//!
//! Paper measurement: 97.5 W idle; the increase from 0 → 100 % utilization
//! is only 0.59 W (≈0.6 % of idle), whether 2 or 4 ports are active — the
//! justification for the constant-power-when-on switch model used
//! everywhere else.

use eprons_bench::banner;
use eprons_core::report::Table;
use eprons_net::power::hpe_e3800_power_w;

fn main() {
    banner("Fig. 8", "measured HPE switch power vs link utilization");
    let mut t = Table::new(
        "switch power (W) vs utilization",
        &["util%", "2-ports", "4-ports"],
    );
    for pct in (0..=100).step_by(10) {
        let u = pct as f64 / 100.0;
        t.row(&[
            format!("{pct}"),
            format!("{:.2}", hpe_e3800_power_w(u, 2)),
            format!("{:.2}", hpe_e3800_power_w(u, 4)),
        ]);
    }
    println!("{t}");
    let idle = hpe_e3800_power_w(0.0, 2);
    let full = hpe_e3800_power_w(1.0, 2);
    println!(
        "idle {idle:.2} W; full-load delta {:.2} W ({:.2}% of idle) — paper: 97.5 W idle, +0.59 W (0.6%)",
        full - idle,
        (full - idle) / idle * 100.0
    );
    eprons_bench::finish();
}
