//! Figure 11 — the scale factor K as the network's latency/power knob.
//!
//! (a) K vs. 95th-percentile network tail latency (one line per background
//!     load; larger K → smaller tail);
//! (b) K vs. number of active switches (larger K → more switches on;
//!     paper: at 50 % background, K=4 turns on 6 more switches and drops
//!     the tail to ≈4.75 ms);
//! (c) active switches vs. tail latency — the trade-off frontier whose
//!     origin-closest point is the optimal K.
//!
//! One [`ScenarioContext`] per background level; the K ladder fans out
//! over it through `evaluate_candidates`.

use eprons_bench::{banner, sweep_duration_s, BASE_SEED};
use eprons_core::report::{ms, Table};
use eprons_core::scenario::{ScenarioContext, ScenarioSpec};
use eprons_core::{ClusterConfig, ConsolidationSpec, ServerScheme};

const BACKGROUNDS: [f64; 5] = [0.05, 0.10, 0.20, 0.30, 0.50];
const KS: [f64; 5] = [1.0, 2.0, 3.0, 4.0, 5.0];

fn main() {
    banner(
        "Fig. 11",
        "scale factor K vs tail latency and active switches",
    );
    let cfg = ClusterConfig::default();
    let candidates: Vec<ConsolidationSpec> =
        KS.iter().map(|&k| ConsolidationSpec::GreedyK(k)).collect();

    let results: Vec<Vec<Option<eprons_core::ClusterRunResult>>> = BACKGROUNDS
        .iter()
        .map(|&bg| {
            let ctx = ScenarioContext::build(
                &cfg,
                &ScenarioSpec {
                    server_utilization: 0.3,
                    background_util: bg,
                    duration_s: sweep_duration_s(),
                    warmup_s: 0.0,
                    seed: BASE_SEED,
                },
            );
            ctx.evaluate_candidates(ServerScheme::NoPowerManagement, &candidates)
                .into_iter()
                .map(|(_, res)| res.ok())
                .collect()
        })
        .collect();

    let mut a = Table::new(
        "(a) 95th-percentile network tail latency (ms) vs K",
        &["bg%", "K=1", "K=2", "K=3", "K=4", "K=5"],
    );
    let mut b = Table::new(
        "(b) active switches vs K",
        &["bg%", "K=1", "K=2", "K=3", "K=4", "K=5"],
    );
    for (bi, &bg) in BACKGROUNDS.iter().enumerate() {
        let mut ra = vec![format!("{:.0}", bg * 100.0)];
        let mut rb = vec![format!("{:.0}", bg * 100.0)];
        for cell in &results[bi] {
            match cell {
                Some(r) => {
                    ra.push(ms(r.net_latency.p95_s));
                    rb.push(format!("{}", r.active_switches));
                }
                None => {
                    ra.push("infeas".into());
                    rb.push("infeas".into());
                }
            }
        }
        a.row(&ra);
        b.row(&rb);
    }
    println!("{a}");
    println!("{b}");

    let mut c = Table::new(
        "(c) frontier at 50% background: active switches vs tail latency",
        &["K", "switches", "p95-ms"],
    );
    for (ki, &k) in KS.iter().enumerate() {
        if let Some(r) = &results[BACKGROUNDS.len() - 1][ki] {
            c.row(&[
                format!("{k:.0}"),
                format!("{}", r.active_switches),
                ms(r.net_latency.p95_s),
            ]);
        }
    }
    println!("{c}");
    println!("paper shape: larger K → lower tail, more active switches; K trades the two off");
    eprons_bench::finish();
}
