//! `obsctl` — journal analysis and audit CLI.
//!
//! Every fig binary dumps its run journal with `--journal <path>`; this
//! tool turns those JSON-lines dumps into summaries, flamegraph input,
//! CI-gating diffs, and conservation audits. All logic lives in
//! `eprons_bench::obsctl`; this wrapper only parses arguments and maps
//! results to exit codes (0 = clean, 1 = violations/differences found,
//! 2 = usage error).

use std::path::PathBuf;
use std::process::ExitCode;

use eprons_bench::obsctl;

const USAGE: &str = "\
usage: obsctl <command> [args]

commands:
  summarize <journal>                     event, span, epoch, and energy tables
  flame <journal>                         collapsed stacks (pipe to flamegraph.pl)
  diff <a> <b> [--rel-tol X] [--time-tol X]
                                          order-insensitive journal comparison;
                                          exit 1 if the journals differ
  audit <journal> [--rel-tol X]           check conservation invariants
                                          (default tolerance 1e-9); exit 1 on
                                          any violation
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Runs one subcommand; `Ok(true)` means a clean exit, `Ok(false)` a
/// finding (differences or violations), `Err` a usage problem.
fn run(args: &[String]) -> Result<bool, String> {
    let cmd = args.first().map(String::as_str).ok_or("missing command")?;
    match cmd {
        "summarize" => {
            let (paths, _) = split_flags(&args[1..], &[])?;
            let [path] = paths.as_slice() else {
                return Err("summarize takes exactly one journal path".into());
            };
            let entries = obsctl::load(path)?;
            print!("{}", obsctl::summarize(&entries));
            Ok(true)
        }
        "flame" => {
            let (paths, _) = split_flags(&args[1..], &[])?;
            let [path] = paths.as_slice() else {
                return Err("flame takes exactly one journal path".into());
            };
            let entries = obsctl::load(path)?;
            print!("{}", obsctl::flame(&entries));
            Ok(true)
        }
        "diff" => {
            let (paths, flags) = split_flags(&args[1..], &["--rel-tol", "--time-tol"])?;
            let [a, b] = paths.as_slice() else {
                return Err("diff takes exactly two journal paths".into());
            };
            let opts = obsctl::DiffOptions {
                rel_tol: flags.get("--rel-tol").copied().unwrap_or(0.0),
                time_tol: flags.get("--time-tol").copied(),
            };
            let diffs = obsctl::diff(&obsctl::load(a)?, &obsctl::load(b)?, &opts);
            if diffs.is_empty() {
                println!("journals agree ({} vs {})", a.display(), b.display());
                Ok(true)
            } else {
                for d in &diffs {
                    println!("{d}");
                }
                println!("{} difference(s)", diffs.len());
                Ok(false)
            }
        }
        "audit" => {
            let (paths, flags) = split_flags(&args[1..], &["--rel-tol"])?;
            let [path] = paths.as_slice() else {
                return Err("audit takes exactly one journal path".into());
            };
            let rel_tol = flags.get("--rel-tol").copied().unwrap_or(1.0e-9);
            let report = obsctl::audit(&obsctl::load(path)?, rel_tol);
            print!("{}", report.render());
            Ok(report.is_clean())
        }
        other => Err(format!("unknown command '{other}'")),
    }
}

/// Splits positional paths from `--flag <f64>` pairs (only `allowed`
/// flags are accepted).
fn split_flags(
    args: &[String],
    allowed: &[&'static str],
) -> Result<(Vec<PathBuf>, std::collections::HashMap<&'static str, f64>), String> {
    let mut paths = Vec::new();
    let mut flags = std::collections::HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(&flag) = allowed.iter().find(|&&f| f == a.as_str()) {
            let v = it
                .next()
                .ok_or(format!("{flag} requires a value"))?
                .parse::<f64>()
                .map_err(|e| format!("{flag}: {e}"))?;
            if v.is_nan() || v < 0.0 {
                return Err(format!("{flag} must be non-negative"));
            }
            flags.insert(flag, v);
        } else if a.starts_with("--") {
            return Err(format!("unknown flag '{a}'"));
        } else {
            paths.push(PathBuf::from(a));
        }
    }
    Ok((paths, flags))
}
