//! Figure 15 — total system power over the diurnal day and average
//! savings: the paper's headline result.
//!
//! (a) the power timeline for no-PM / TimeTrader / EPRONS (EPRONS's DCN
//!     power follows the diurnal pattern; TimeTrader's does not);
//! (b) average and peak savings. Paper: EPRONS saves ≈25 % on average and
//!     up to 31.25 % (at night); TimeTrader ≈8 % average, ≤12.5 % peak;
//!     EPRONS's *server-side* saving alone beats TimeTrader's by ≈2 %.

use eprons_bench::{banner, finish, journal_path, quick, BASE_SEED};
use eprons_core::controller::{day_average, DayConfig};
use eprons_core::optimizer::aggregation_candidates;
use eprons_core::report::{pct, Table};
use eprons_core::{simulate_day, ClusterConfig, DayStrategy};

fn main() {
    banner(
        "Fig. 15",
        "diurnal total-power timeline and average savings",
    );
    let cfg = ClusterConfig::default();
    let day = DayConfig {
        epoch_minutes: if quick() { 120 } else { 30 },
        sim_seconds: if quick() { 8.0 } else { 20.0 },
        peak_utilization: 0.5,
        seed: BASE_SEED,
        warm_start: true,
        ..DayConfig::default()
    };

    let nopm = simulate_day(&cfg, &DayStrategy::NoPowerManagement, &day);
    let tt = simulate_day(&cfg, &DayStrategy::TimeTrader, &day);
    let eprons = simulate_day(
        &cfg,
        &DayStrategy::Eprons {
            candidates: aggregation_candidates(),
        },
        &day,
    );

    let mut a = Table::new(
        "(a) total system power (W) over the day",
        &[
            "minute",
            "search%",
            "no-pm",
            "timetrader",
            "eprons",
            "eprons-netW",
            "eprons-switches",
        ],
    );
    for i in 0..nopm.len() {
        a.row(&[
            format!("{:.0}", nopm[i].minute),
            format!("{:.0}", nopm[i].search_load * 100.0),
            format!("{:.0}", nopm[i].breakdown.total_w()),
            format!("{:.0}", tt[i].breakdown.total_w()),
            format!("{:.0}", eprons[i].breakdown.total_w()),
            format!("{:.0}", eprons[i].breakdown.network_w),
            format!("{}", eprons[i].active_switches),
        ]);
    }
    println!("{a}");

    let base = day_average(&nopm);
    let tt_avg = day_average(&tt);
    let ep_avg = day_average(&eprons);
    let tt_sav = tt_avg.saving_vs(&base);
    let ep_sav = ep_avg.saving_vs(&base);

    let peak_saving = |recs: &[eprons_core::DayRecord]| {
        recs.iter()
            .zip(&nopm)
            .map(|(r, b)| (b.breakdown.total_w() - r.breakdown.total_w()) / b.breakdown.total_w())
            .fold(0.0f64, f64::max)
    };

    let mut b = Table::new(
        "(b) savings vs no-power-management (%)",
        &["scheme", "server", "network", "total-avg", "total-peak"],
    );
    b.row(&[
        "timetrader".into(),
        pct(tt_sav.server),
        pct(tt_sav.network),
        pct(tt_sav.total),
        pct(peak_saving(&tt)),
    ]);
    b.row(&[
        "eprons".into(),
        pct(ep_sav.server),
        pct(ep_sav.network),
        pct(ep_sav.total),
        pct(peak_saving(&eprons)),
    ]);
    println!("{b}");
    println!("paper anchors: EPRONS ≈25% avg / ≤31.25% peak total saving (peak at night);");
    println!("TimeTrader ≈8% avg / ≤12.5% peak, with zero network saving;");
    println!(
        "EPRONS total saving ≥ 2× TimeTrader's; EPRONS server-side saving alone beats TimeTrader"
    );
    let feas = eprons.iter().filter(|r| r.feasible).count();
    println!("EPRONS feasible epochs: {feas}/{}", eprons.len());

    if journal_path().is_some() {
        // The day loop deploys the greedy/aggregation consolidators, so
        // the LP solver never runs above. Cross-check a small instance
        // against the exact path MILP too, journaling its LP solve stats.
        use eprons_net::flow::FlowSet;
        use eprons_net::{ConsolidationConfig, Consolidator, FlowClass, PathMilpConsolidator};
        use eprons_topo::FatTree;
        let ft = FatTree::new(2, 1000.0);
        let mut fs = FlowSet::new();
        fs.add(
            ft.hosts()[0],
            ft.hosts()[1],
            300.0,
            FlowClass::LatencySensitive,
        );
        fs.add(
            ft.hosts()[1],
            ft.hosts()[0],
            200.0,
            FlowClass::LatencyTolerant,
        );
        let a = PathMilpConsolidator::default()
            .consolidate(&ft, &fs, &ConsolidationConfig::with_k(1.0))
            .expect("small exact instance solves");
        println!(
            "exact path-MILP cross-check (k=2 fat-tree): {} active switches",
            a.active_switch_count(&ft)
        );
    }
    finish();
}
