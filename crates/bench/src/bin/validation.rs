//! SLA validation: does the measured miss rate track the VP target?
//!
//! The paper's core guarantee (§III): "EPRONS-Server can guarantee that
//! the average tail latency of services meets the latency constraints."
//! The mechanism sets the per-decision *average* violation probability to
//! the miss budget; this harness sweeps the budget and checks that the
//! *measured* miss rate lands at or below it (the model is conservative
//! between decision instants), at several loads.

use eprons_bench::{banner, pct_or_na, quick, BASE_SEED};
use eprons_core::report::Table;
use eprons_server::policy::DvfsPolicy;
use eprons_server::{
    coresim::poisson_trace, simulate_core, AvgVpPolicy, CoreSimConfig, MaxVpPolicy, ServiceModel,
    VpEngine,
};
use eprons_sim::SimRng;

fn main() {
    banner(
        "Validation",
        "measured miss rate vs VP target (the §III guarantee)",
    );
    let mut rng = SimRng::seed_from_u64(BASE_SEED);
    let service = ServiceModel::synthetic_xapian(&mut rng, 30_000, 160);
    let mean_t = service.mean_service_time(2.7);
    let cfg = CoreSimConfig::default();
    let dur = if quick() { 60.0 } else { 240.0 };

    let mut t = Table::new(
        "measured miss rate (%) vs VP target, 25 ms budget",
        &["target%", "scheme", "util=20%", "util=35%", "util=50%"],
    );
    for target in [0.01, 0.05, 0.10] {
        for (label, is_avg) in [("avg-vp (eprons)", true), ("max-vp (rubik)", false)] {
            let mut row = vec![format!("{:.0}", target * 100.0), label.to_string()];
            for util in [0.2, 0.35, 0.5] {
                let mut trng = SimRng::seed_from_u64(BASE_SEED + 7);
                let arrivals = poisson_trace(&mut trng, util / mean_t, dur, 25.0e-3);
                let mut engine = VpEngine::new(service.clone());
                let mut policy: Box<dyn DvfsPolicy> = if is_avg {
                    Box::new(AvgVpPolicy { target, edf: true })
                } else {
                    Box::new(MaxVpPolicy {
                        target,
                        label: "max-vp",
                    })
                };
                let r = simulate_core(policy.as_mut(), &mut engine, &arrivals, &cfg, 9);
                row.push(pct_or_na(r.miss_rate()));
            }
            t.row(&row);
        }
    }
    println!("{t}");
    println!("expected: measured miss tracks the target, with avg-vp closer to it than");
    println!("max-vp — that closeness is exactly the energy EPRONS-Server recovers.");
    println!("At tight targets and high load both schemes saturate f_max on bursts and");
    println!("overshoot together (no frequency can honor a 1% tail at 50% load).");
    eprons_bench::finish();
}
