//! Ablations of EPRONS's design choices (DESIGN.md's ablation list).
//!
//! 1. **average-VP vs. max-VP** frequency selection (the §III insight);
//! 2. **EDF reordering on/off** inside EPRONS-Server (§V-B2);
//! 3. **deep sleep vs. DVFS** across load (the DynSleep/SleepScale-style
//!    extension: sleeping wins at low load, scaling at high load);
//! 4. **switch transition overheads** over a diurnal day (§IV-B's deferred
//!    cost: 72.52 s measured power-on per switch, amortized).

use eprons_bench::{banner, pct_or_na, quick, BASE_SEED};
use eprons_core::controller::{day_transition_energy_j, DayConfig};
use eprons_core::optimizer::aggregation_candidates;
use eprons_core::report::Table;
use eprons_core::{simulate_day, ClusterConfig, DayStrategy};
use eprons_net::TransitionModel;
use eprons_server::policy::DvfsPolicy;
use eprons_server::{
    coresim::poisson_trace, simulate_core, AvgVpPolicy, CoreSimConfig, DeepSleepPolicy,
    MaxVpPolicy, ServiceModel, VpEngine,
};
use eprons_sim::SimRng;

fn main() {
    banner("Ablations", "design-choice isolation studies");
    let mut rng = SimRng::seed_from_u64(BASE_SEED);
    let service = ServiceModel::synthetic_xapian(&mut rng, 30_000, 160);
    let mean_t = service.mean_service_time(2.7);
    let cfg = CoreSimConfig::default();
    let dur = if quick() { 40.0 } else { 120.0 };

    let run = |policy: &mut dyn DvfsPolicy, util: f64, budget: f64, seed: u64| {
        let mut trng = SimRng::seed_from_u64(seed);
        let arrivals = poisson_trace(&mut trng, util / mean_t, dur, budget);
        let mut engine = VpEngine::new(service.clone());
        simulate_core(policy, &mut engine, &arrivals, &cfg, seed)
    };

    // --- 1 + 2: avg-vs-max VP and EDF-vs-FIFO. EDF only matters with
    // *variable* per-request deadlines (the network-slack situation of
    // §III), so budgets carry a random slack of 0–5 ms.
    let run_varslack = |policy: &mut dyn DvfsPolicy, util: f64, seed: u64| {
        let mut trng = SimRng::seed_from_u64(seed);
        let mut arrivals = poisson_trace(&mut trng, util / mean_t, dur, 25.0e-3);
        let mut srng = SimRng::seed_from_u64(seed ^ 0xABCD);
        for a in arrivals.iter_mut() {
            a.budget_s = 25.0e-3 + srng.uniform_range(0.0, 5.0e-3);
        }
        let mut engine = VpEngine::new(service.clone());
        simulate_core(policy, &mut engine, &arrivals, &cfg, seed)
    };
    let mut t = Table::new(
        "avg-VP vs max-VP and EDF vs FIFO (per-core, 25 ms budget + 0-5 ms random slack)",
        &[
            "util%",
            "max-vp-W",
            "avg-vp-fifo-W",
            "avg-vp-edf-W",
            "edf-miss%",
            "fifo-miss%",
        ],
    );
    for util in [0.2, 0.35, 0.5] {
        let max_vp = run_varslack(&mut MaxVpPolicy::rubik_plus(), util, BASE_SEED + 1);
        let fifo = run_varslack(&mut AvgVpPolicy::eprons_fifo(), util, BASE_SEED + 1);
        let edf = run_varslack(&mut AvgVpPolicy::eprons(), util, BASE_SEED + 1);
        t.row(&[
            format!("{:.0}", util * 100.0),
            format!("{:.3}", max_vp.avg_core_power_w()),
            format!("{:.3}", fifo.avg_core_power_w()),
            format!("{:.3}", edf.avg_core_power_w()),
            pct_or_na(edf.miss_rate()),
            pct_or_na(fifo.miss_rate()),
        ]);
    }
    println!("{t}");
    println!("expected: avg-VP ≤ max-VP power at every load; EDF trims the miss rate under");
    println!("slack variation (the situation EPRONS-Server is designed for, §III)\n");

    // --- 3: deep sleep vs DVFS crossover. ---
    let mut t = Table::new(
        "deep sleep (DynSleep-style) vs DVFS (Rubik) across load, 30 ms budget",
        &["util%", "dvfs-W", "sleep-W", "sleep-wins", "sleep-miss%"],
    );
    for util in [0.02, 0.05, 0.1, 0.2, 0.4] {
        let dvfs = run(&mut MaxVpPolicy::rubik(), util, 30.0e-3, BASE_SEED + 2);
        let sleep = run(&mut DeepSleepPolicy::new(), util, 30.0e-3, BASE_SEED + 2);
        t.row(&[
            format!("{:.0}", util * 100.0),
            format!("{:.3}", dvfs.avg_core_power_w()),
            format!("{:.3}", sleep.avg_core_power_w()),
            format!("{}", sleep.avg_core_power_w() < dvfs.avg_core_power_w()),
            pct_or_na(sleep.miss_rate()),
        ]);
    }
    println!("{t}");
    println!(
        "expected: sleeping wins at low load (idle dominates), DVFS competitive as load grows\n"
    );

    // --- 4: transition overheads over a day. ---
    let ccfg = ClusterConfig::default();
    let day = DayConfig {
        epoch_minutes: if quick() { 120 } else { 60 },
        sim_seconds: if quick() { 4.0 } else { 8.0 },
        peak_utilization: 0.5,
        seed: BASE_SEED,
        warm_start: true,
        ..DayConfig::default()
    };
    let eprons = simulate_day(
        &ccfg,
        &DayStrategy::Eprons {
            candidates: aggregation_candidates(),
        },
        &day,
    );
    let model = TransitionModel::default();
    let e = day_transition_energy_j(&eprons, &model);
    let reconfigs = eprons
        .windows(2)
        .filter(|w| w[0].active_switch_ids != w[1].active_switch_ids)
        .count();
    let day_s = 24.0 * 3600.0;
    println!("# switch transition overheads over one day (HPE power-on 72.52 s)");
    println!("  reconfiguration epochs: {reconfigs}/{}", eprons.len() - 1);
    println!("  transition energy:      {e:.0} J");
    println!(
        "  amortized power:        {:.2} W ({:.3}% of the ~1.3 kW data center)",
        e / day_s,
        e / day_s / 1300.0 * 100.0
    );
    println!("paper context: §IV-B defers this cost (software switches); with hardware it");
    println!("stays negligible at the 10-minute epoch cadence, validating the deferral");
    eprons_bench::finish();
}
