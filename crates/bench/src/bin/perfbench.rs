//! perfbench — the tracked performance benchmark for the sharded cluster
//! simulator (writes `BENCH_cluster.json` at the repo root).
//!
//! Three layers are timed, bottom up:
//!
//! * `convolve/*` — the FFT convolution kernel, with and without the
//!   thread-local plan cache (the plan-construction overhead the cache
//!   removes from every equivalent-request convolution);
//! * `vp_decision/*` — one VP-engine decision over a 16-deep queue, cold
//!   (shared equivalent-distribution cache cleared each iteration) and
//!   warm (ladder inherited from the process-wide cache);
//! * `run_cluster` / `optimize_total_power/*` — the end-to-end simulator
//!   and the 4-candidate aggregation-ladder optimizer, the last in three
//!   variants: `serial_cold` (one thread, fresh context per sweep, the
//!   NetworkPlan memo off, exhaustive sweep — the pre-warm-start shape),
//!   `serial_warm` (one thread, shared context, plan memo on, the
//!   bound-pruned sweep with the previous winner as ordering hint — the
//!   controller's steady-state epoch shape), and `parallel_warm` (the
//!   warm shape under a thread budget equal to host parallelism; skipped
//!   with a recorded reason on a single-core host, where it could only
//!   re-measure `serial_warm` plus thread overhead);
//! * `ladder_warm_start/*` — the consolidation MILP's LP relaxation
//!   chained across a descending K ladder: the cold chain re-solves
//!   every rung from scratch (phase 1 + phase 2 per rung), the warm
//!   chain threads each rung's optimal `Basis` into the next via
//!   `Standardized::solve_warm` (descending K only shrinks demands, so
//!   the previous basis stays primal-feasible and phase 1 is skipped),
//!   with the per-chain simplex pivot totals recorded alongside the
//!   wall-clock;
//! * `scenario_reuse/*` — the same 4-candidate sweep with a fresh
//!   `run_cluster` per candidate and cold caches (what every sweep paid
//!   before the staged pipeline) vs one shared `ScenarioContext`
//!   evaluated per candidate;
//! * `scale_ladder/*` — asymptotic curves over fat-tree size: topology
//!   `build` and greedy `consolidate` up the full k=4..24 ladder, path
//!   `arena` materialization up to k=16, the end-to-end `optimize` epoch
//!   up the whole ladder (k>=12 rides the pod-decomposed consolidation
//!   strategy via the `Auto` default — the hierarchical solver is what
//!   makes the k=20/24 rungs finish at all), plus a forced
//!   dense-vs-sparse simplex shoot-out on the k=8 consolidation
//!   relaxation (`lp_dense`/`lp_sparse`) whose ratio is
//!   `speedup.scale_ladder.sparse_over_dense_k8`;
//! * `pod_decomp/*` — the hierarchical consolidation head-to-head: one
//!   full `optimize_total_power` epoch with the strategy pinned to
//!   `Monolithic` vs pinned to `PodDecomposed`, same config otherwise
//!   (k=16 full, k=8 `--quick`). `speedup.pod_decomp` divides the two
//!   and records the equivalence fields (total-power relative diff and
//!   feasibility-verdict agreement) the CI smoke gates on.
//!
//! The headline `speedup.optimize_total_power.combined` divides the
//! serial-cold mean by the parallel-warm mean (or the serial-warm mean
//! when the parallel suite is skipped): plan-memo reuse and bound
//! pruning are measurable on any machine, thread scaling contributes on
//! multi-core hosts. Both thread budgets land in the report's `threads`
//! object. `speedup.scenario_reuse.shared_over_cold` isolates the
//! context-reuse win itself (both variants walk candidates serially, so
//! thread count cannot flatter it).
//!
//! Flags: `--quick` (tiny durations for the CI smoke run), `--out <path>`
//! (default `<repo root>/BENCH_cluster.json`), `--journal <path>` (dump
//! the telemetry journal and summary tables, like the fig binaries).

use eprons_bench::harness::Runner;
use eprons_bench::{banner, finish, quick, BASE_SEED};
use eprons_core::scenario::{ScenarioContext, ScenarioSpec};
use eprons_core::{
    optimize_in_context_pruned, optimize_total_power, run_cluster, set_plan_cache_enabled,
    set_thread_budget, ClusterConfig, ClusterRun, ConsolidateStrategy, ConsolidationSpec,
    ServerScheme,
};
use eprons_lp::LpEngine;
use eprons_lp::Standardized;
use eprons_net::consolidate::path::build_path_model;
use eprons_net::flow::FlowSet;
use eprons_net::{ConsolidationConfig, Consolidator, FlowClass, GreedyConsolidator, PathArena};
use eprons_num::complex::Complex;
use eprons_num::conv::{clear_plan_cache, convolve_fft};
use eprons_num::fft::FftPlan;
use eprons_num::Pmf;
use eprons_obs::Json;
use eprons_server::{clear_equiv_cache, equiv_cache_stats, ServiceModel, VpEngine};
use eprons_topo::{AggregationLevel, FatTree};

fn out_path() -> std::path::PathBuf {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if a == "--out" {
            if let Some(p) = args.get(i + 1) {
                return p.into();
            }
            eprintln!("error: --out requires a path");
            std::process::exit(2);
        }
        if let Some(p) = a.strip_prefix("--out=") {
            return p.into();
        }
    }
    // crates/bench/../../ = repo root.
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_cluster.json")
}

fn main() {
    banner("perfbench", "tracked wall-clock benchmarks");
    let mut r = Runner::from_env();
    let host_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    // --- Convolution kernel. ---
    let taps: Vec<f64> = (0..700).map(|i| 1.0 / (i + 1) as f64).collect();
    r.bench("convolve/fft_planned/700x700", || {
        convolve_fft(&taps, &taps)
    });
    r.bench("convolve/fft_plan_per_call/2048", || {
        // What every call paid before the plan cache: build the twiddle
        // tables, transform, multiply, inverse.
        let n = 2048;
        let plan = FftPlan::new(n);
        let mut fa: Vec<Complex> = taps.iter().map(|&x| Complex::from_real(x)).collect();
        fa.resize(n, Complex::ZERO);
        let mut fb = fa.clone();
        plan.forward(&mut fa);
        plan.forward(&mut fb);
        for (x, y) in fa.iter_mut().zip(&fb) {
            *x *= *y;
        }
        plan.inverse(&mut fa);
        fa
    });

    // --- VP decisions. ---
    let service = ServiceModel::new(
        Pmf::from_masses(2.7e-4, 2.7e-4, vec![0.1, 0.3, 0.3, 0.2, 0.1]),
        0.1e-3,
    );
    let deadlines: Vec<f64> = (1..=16).map(|i| i as f64 * 2.0e-3).collect();
    r.bench("vp_decision/cold/queue16", || {
        clear_equiv_cache();
        let mut engine = VpEngine::new(service.clone());
        engine.decision(0.0, None, &deadlines).len()
    });
    clear_equiv_cache();
    let mut warm_engine = VpEngine::new(service.clone());
    let _ = warm_engine.decision(0.0, None, &deadlines);
    r.bench("vp_decision/warm/queue16", || {
        // Fresh engine each iteration, but the ladder comes from the
        // shared cache published by the previous one.
        let mut engine = VpEngine::new(service.clone());
        engine.decision(0.0, None, &deadlines).len()
    });

    // --- End-to-end cluster run. ---
    let cfg = ClusterConfig::default();
    let duration_s = if quick() { 0.25 } else { 2.0 };
    let cluster = ClusterRun {
        scheme: ServerScheme::EpronsServer,
        consolidation: ConsolidationSpec::GreedyK(2.0),
        server_utilization: 0.3,
        background_util: 0.2,
        duration_s,
        warmup_s: 0.0,
        seed: BASE_SEED,
    };
    r.bench("run_cluster/eprons_greedy", || {
        run_cluster(&cfg, &cluster).unwrap().cpu_power_w
    });

    // --- The 4-candidate aggregation-ladder optimizer. ---
    let template = ClusterRun {
        consolidation: ConsolidationSpec::AllOn,
        ..cluster.clone()
    };
    let candidates = [
        ConsolidationSpec::AllOn,
        ConsolidationSpec::Level(AggregationLevel::Agg1),
        ConsolidationSpec::Level(AggregationLevel::Agg2),
        ConsolidationSpec::Level(AggregationLevel::Agg3),
    ];
    // `serial_cold` replays the pre-warm-start pipeline exactly: one
    // thread, a fresh ScenarioContext per sweep, the NetworkPlan memo
    // disabled, every process-wide cache cleared, and the exhaustive
    // (unpruned) candidate sweep.
    let serial_budget = 1usize;
    set_thread_budget(Some(serial_budget));
    r.bench("optimize_total_power/agg_ladder/serial_cold", || {
        clear_equiv_cache();
        clear_plan_cache();
        set_plan_cache_enabled(false);
        let spec = optimize_total_power(&cfg, &template, &candidates)
            .unwrap()
            .spec;
        set_plan_cache_enabled(true);
        spec
    });
    // `serial_warm` is the controller's steady-state epoch shape: one
    // shared context, the NetworkPlan memo on (every candidate's plan is
    // built once, ever), the bound-pruned sweep skipping dominated
    // candidates, and the previous sweep's winner as the ordering hint —
    // the same spec the cold sweep picks, by the determinism contract.
    let warm_ctx = ScenarioContext::for_template(&cfg, &template);
    let mut warm_hint: Option<ConsolidationSpec> = None;
    r.bench("optimize_total_power/agg_ladder/serial_warm", || {
        let choice =
            optimize_in_context_pruned(&warm_ctx, template.scheme, &candidates, &[], warm_hint)
                .0
                .unwrap();
        warm_hint = Some(choice.spec);
        choice.spec
    });
    set_thread_budget(None);
    // The parallel variant needs real cores to say anything: a 1-core
    // host would just re-measure `serial_warm` under thread overhead, so
    // it is skipped there (with the reason recorded in the report) and
    // the combined speedup falls back to the serial-warm mean.
    let parallel_budget = host_threads;
    let parallel_skip = if host_threads > 1 {
        set_thread_budget(Some(parallel_budget));
        let ctx = ScenarioContext::for_template(&cfg, &template);
        let mut hint: Option<ConsolidationSpec> = None;
        r.bench("optimize_total_power/agg_ladder/parallel_warm", || {
            let choice = optimize_in_context_pruned(&ctx, template.scheme, &candidates, &[], hint)
                .0
                .unwrap();
            hint = Some(choice.spec);
            choice.spec
        });
        set_thread_budget(None);
        None
    } else {
        let reason = format!("single-core host (available parallelism {host_threads})");
        println!("optimize_total_power/agg_ladder/parallel_warm      skipped: {reason}");
        Some(reason)
    };

    // --- LP warm-start chaining over the consolidation K ladder. ---
    //
    // Adjacent K rungs of the consolidation MILP share one standard
    // form (K only rescales latency-sensitive demands — matrix
    // coefficients change, dimensions don't), so each rung's optimal
    // simplex basis is a ready starting point for the next. The ladder
    // descends: shrinking demands keep the previous basis primal-
    // feasible, letting `solve_warm` skip phase 1 entirely. The cold
    // chain solves every rung's LP relaxation from scratch; the warm
    // chain threads the `Basis` rung to rung. Both closures return the
    // chain's total simplex pivot count, so the pivot deltas come from
    // one plain call — no counters needed.
    let ft = FatTree::new(4, 1000.0);
    let arena = PathArena::build(&ft);
    let ladder_flows = {
        let hosts = ft.hosts();
        let mut fs = FlowSet::new();
        // Cross-pod demand matrix: enough flows that the relaxation
        // does real phase-1 work, small enough that a full chain fits a
        // bench iteration.
        for (i, &(a, b, d)) in [
            (0usize, 8usize, 120.0),
            (1, 12, 80.0),
            (5, 9, 140.0),
            (10, 3, 70.0),
            (2, 14, 90.0),
            (6, 11, 60.0),
        ]
        .iter()
        .enumerate()
        {
            fs.add(
                hosts[a],
                hosts[b],
                d,
                if i % 2 == 0 {
                    FlowClass::LatencySensitive
                } else {
                    FlowClass::LatencyTolerant
                },
            );
        }
        fs
    };
    let k_ladder = [2.5, 2.0, 1.5, 1.0];
    let rungs: Vec<Standardized> = k_ladder
        .iter()
        .map(|&k| {
            Standardized::from_model(
                &build_path_model(&arena, &ladder_flows, &ConsolidationConfig::with_k(k)).model,
            )
        })
        .collect();
    let cold_chain = || {
        rungs
            .iter()
            .map(|sf| sf.solve_with_stats().unwrap().1.iterations)
            .sum::<u64>()
    };
    let warm_chain = || {
        let mut basis = None;
        rungs
            .iter()
            .map(|sf| {
                let (_, stats, b) = sf.solve_warm(basis.as_ref()).unwrap();
                basis = Some(b);
                stats.iterations
            })
            .sum::<u64>()
    };
    let (chain_pivots_cold, chain_pivots_warm) = (cold_chain(), warm_chain());
    r.bench("ladder_warm_start/cold_chain", cold_chain);
    r.bench("ladder_warm_start/warm_chain", warm_chain);

    // --- Scenario reuse: the staged pipeline's raison d'être. ---
    //
    // Both variants sweep the same 4 candidates serially so the measured
    // gap is context reuse alone. `cold_per_candidate` replays the
    // pre-staged shape — one `run_cluster` process-equivalent per
    // candidate, each rebuilding topology, service model, and workloads
    // from cold process-wide caches (the clears inside the loop model the
    // fresh-process-per-point sweep scripts this pipeline replaces).
    // `shared_context` builds one ScenarioContext and evaluates each
    // candidate against it.
    //
    // The scenario build is a *fixed* per-sweep cost (~2 ms: service-model
    // fit, workload generation) while candidate evaluation scales with the
    // simulated horizon, so this suite uses a short horizon to measure the
    // fixed cost the pipeline eliminates rather than drown it in
    // horizon-proportional DVFS simulation. The reuse win shrinks as
    // horizons grow; `run_cluster/eprons_greedy` above tracks the
    // long-horizon cost.
    let reuse_run = ClusterRun {
        duration_s: if quick() { 0.1 } else { 0.15 },
        ..cluster.clone()
    };
    set_thread_budget(Some(1));
    r.bench("scenario_reuse/cold_per_candidate", || {
        candidates
            .iter()
            .map(|&spec| {
                clear_equiv_cache();
                clear_plan_cache();
                let run = ClusterRun {
                    consolidation: spec,
                    ..reuse_run.clone()
                };
                run_cluster(&cfg, &run).unwrap().breakdown.total_w()
            })
            .sum::<f64>()
    });
    let sweep_spec = ScenarioSpec {
        server_utilization: reuse_run.server_utilization,
        background_util: reuse_run.background_util,
        duration_s: reuse_run.duration_s,
        warmup_s: reuse_run.warmup_s,
        seed: reuse_run.seed,
    };
    r.bench("scenario_reuse/shared_context", || {
        let ctx = ScenarioContext::build(&cfg, &sweep_spec);
        candidates
            .iter()
            .map(|&spec| {
                ctx.evaluate(ServerScheme::EpronsServer, spec)
                    .unwrap()
                    .breakdown
                    .total_w()
            })
            .sum::<f64>()
    });
    set_thread_budget(None);

    // --- Scale ladder: asymptotic curves over fat-tree k. ---
    //
    // Four curves, bottom up: topology construction (`build`), candidate
    // path materialization (`arena`), one full greedy consolidation pass
    // over an all-hosts antipodal flow set (`consolidate`), and the
    // end-to-end joint optimizer epoch (`optimize`). Build, consolidate,
    // and optimize climb the whole ladder (k=20/24 included — the
    // optimizer rides the pod-decomposed strategy there via the `Auto`
    // default, which is what turned those rungs from a lunch break into
    // a benchmark iteration); the arena curve stops at k=16, where the
    // monolithic enumeration it measures stops being relevant. The
    // `lp_dense`/`lp_sparse` pair forces both simplex engines over the
    // same k=8 consolidation relaxation; their ratio is the headline
    // sparse-core win (`speedup.scale_ladder.sparse_over_dense_k8`).
    //
    // Long points (k>=16) run in a one-shot runner: a second timed
    // iteration would double the wall clock for a second data point on
    // a curve whose shape one point per k already fixes. The LP pair
    // gets its own runner so `--quick` stays a smoke test while full
    // runs still average a few solves.
    let ladder_ks: &[usize] = if quick() {
        &[4, 8]
    } else {
        &[4, 8, 16, 20, 24]
    };
    let mut slow = Runner::new(0.0, 1);
    let mut lp_runner = if quick() {
        Runner::new(0.0, 1)
    } else {
        Runner::new(0.0, 2)
    };
    // One 50 Mbps flow per host to its antipodal peer, classes
    // alternating: every edge uplink carries traffic, so consolidation
    // cannot shortcut, yet K=2.0-scaled demands stay far under capacity
    // at every k (<= 100 Mbps * K per uplink against 1 Gbps links).
    let antipodal_flows = |ft: &FatTree| {
        let hosts = ft.hosts();
        let n = hosts.len();
        let mut fs = FlowSet::new();
        for i in 0..n {
            fs.add(
                hosts[i],
                hosts[(i + n / 2) % n],
                50.0,
                if i % 2 == 0 {
                    FlowClass::LatencySensitive
                } else {
                    FlowClass::LatencyTolerant
                },
            );
        }
        fs
    };
    let greedy_cfg = ConsolidationConfig::with_k(2.0);
    for &k in ladder_ks {
        r.bench(&format!("scale_ladder/build/k{k}"), || {
            FatTree::new(k, 1000.0).hosts().len()
        });
        let ft = FatTree::new(k, 1000.0);
        if k <= 16 {
            let runner = if k >= 16 { &mut slow } else { &mut r };
            runner.bench(&format!("scale_ladder/arena/k{k}"), || {
                PathArena::build(&ft).arena_bytes()
            });
        }
        let flows = antipodal_flows(&ft);
        let runner = if k >= 16 { &mut slow } else { &mut r };
        runner.bench(&format!("scale_ladder/consolidate/k{k}"), || {
            GreedyConsolidator
                .consolidate(&ft, &flows, &greedy_cfg)
                .unwrap()
        });
    }
    // Engine shoot-out on the k=8 relaxation: six cross-pod flows give
    // a ~1300-row standard form — big enough that the dense tableau's
    // O(rows*cols) pivots dominate while the revised core touches only
    // nonzeros, small enough that the dense oracle stays a benchmark
    // iteration rather than a sit-in.
    let lp_ft = FatTree::new(8, 1000.0);
    let lp_arena = PathArena::build(&lp_ft);
    let lp_flows = {
        let hosts = lp_ft.hosts();
        let n = hosts.len();
        let mut fs = FlowSet::new();
        for i in 0..6 {
            fs.add(
                hosts[i],
                hosts[(i + n / 2) % n],
                40.0 + 10.0 * (i % 5) as f64,
                if i % 2 == 0 {
                    FlowClass::LatencySensitive
                } else {
                    FlowClass::LatencyTolerant
                },
            );
        }
        fs
    };
    let lp_sf =
        Standardized::from_model(&build_path_model(&lp_arena, &lp_flows, &greedy_cfg).model);
    lp_runner.bench("scale_ladder/lp_dense/k8", || {
        lp_sf
            .solve_warm_with(None, LpEngine::Dense)
            .unwrap()
            .0
            .objective
    });
    lp_runner.bench("scale_ladder/lp_sparse/k8", || {
        lp_sf
            .solve_warm_with(None, LpEngine::Sparse)
            .unwrap()
            .0
            .objective
    });
    // End-to-end optimizer epochs. Default per-pair query demand
    // oversubscribes edge uplinks once k >= 8 (the all-pairs flow count
    // grows as n^2 against a fixed uplink budget), so the ladder scales
    // the per-flow rate to hold total egress per host at 300 Mbps — the
    // same epoch shape at every k, feasible at all of them. The config
    // keeps the default `Auto` strategy: k < 12 runs the monolithic
    // consolidator, k >= 12 the pod-decomposed one, exactly what the
    // controller would pick at each size.
    for &k in ladder_ks {
        let mut kcfg = ClusterConfig {
            fat_tree_k: k,
            ..ClusterConfig::default()
        };
        let n = kcfg.num_servers() as f64;
        kcfg.query_flow_mbps = (300.0 / (n - 1.0)).min(10.0);
        let ktemplate = ClusterRun {
            scheme: ServerScheme::EpronsServer,
            consolidation: ConsolidationSpec::AllOn,
            server_utilization: 0.3,
            background_util: 0.0,
            duration_s: 0.02,
            warmup_s: 0.0,
            seed: BASE_SEED,
        };
        let kcand = [ConsolidationSpec::GreedyK(2.0)];
        let runner = if k >= 16 { &mut slow } else { &mut r };
        runner.bench(&format!("scale_ladder/optimize/k{k}"), || {
            optimize_total_power(&kcfg, &ktemplate, &kcand)
                .unwrap()
                .result
                .breakdown
                .total_w()
        });
    }
    // --- Pod decomposition head-to-head: same epoch, strategy pinned. ---
    //
    // The scale ladder above rides the `Auto` strategy, so its k >= 12
    // rungs are already decomposed; this pair pins the strategy both
    // ways on one config so the ratio is the decomposition win itself
    // and nothing else. One-shot runner: the monolithic k=16 epoch is
    // the expensive half, and the ratio needs matched conditions more
    // than it needs averaging. The closures also capture each epoch's
    // objective and SLA verdict so the report carries the equivalence
    // fields the CI smoke gates on.
    let pd_k: usize = if quick() { 8 } else { 16 };
    let pd_cfg = |strategy| {
        let mut c = ClusterConfig {
            fat_tree_k: pd_k,
            consolidate_strategy: strategy,
            ..ClusterConfig::default()
        };
        let n = c.num_servers() as f64;
        c.query_flow_mbps = (300.0 / (n - 1.0)).min(10.0);
        c
    };
    let pd_mono_cfg = pd_cfg(ConsolidateStrategy::Monolithic);
    let pd_dec_cfg = pd_cfg(ConsolidateStrategy::PodDecomposed);
    let pd_template = ClusterRun {
        scheme: ServerScheme::EpronsServer,
        consolidation: ConsolidationSpec::AllOn,
        server_utilization: 0.3,
        background_util: 0.0,
        duration_s: 0.02,
        warmup_s: 0.0,
        seed: BASE_SEED,
    };
    let pd_cand = [ConsolidationSpec::GreedyK(2.0)];
    let mut pd_mono = (f64::NAN, false);
    slow.bench(&format!("pod_decomp/optimize/monolithic/k{pd_k}"), || {
        let c = optimize_total_power(&pd_mono_cfg, &pd_template, &pd_cand).unwrap();
        pd_mono = (
            c.result.breakdown.total_w(),
            c.result.is_feasible(&pd_mono_cfg),
        );
        pd_mono.0
    });
    let mut pd_dec = (f64::NAN, false);
    slow.bench(&format!("pod_decomp/optimize/decomposed/k{pd_k}"), || {
        let c = optimize_total_power(&pd_dec_cfg, &pd_template, &pd_cand).unwrap();
        pd_dec = (
            c.result.breakdown.total_w(),
            c.result.is_feasible(&pd_dec_cfg),
        );
        pd_dec.0
    });

    r.samples.append(&mut lp_runner.samples);
    r.samples.append(&mut slow.samples);

    // --- Report. ---
    let serial_cold = r
        .mean_of("optimize_total_power/agg_ladder/serial_cold")
        .expect("suite ran");
    let serial_warm = r
        .mean_of("optimize_total_power/agg_ladder/serial_warm")
        .expect("suite ran");
    // On a skipped parallel run the warm serial mean stands in: the
    // combined headline then measures pure cache-and-pruning reuse.
    let parallel_warm = r
        .mean_of("optimize_total_power/agg_ladder/parallel_warm")
        .unwrap_or(serial_warm);
    let combined = serial_cold / parallel_warm;
    let ladder_cold = r
        .mean_of("ladder_warm_start/cold_chain")
        .expect("suite ran");
    let ladder_warm = r
        .mean_of("ladder_warm_start/warm_chain")
        .expect("suite ran");
    let reuse_cold = r
        .mean_of("scenario_reuse/cold_per_candidate")
        .expect("suite ran");
    let reuse_shared = r
        .mean_of("scenario_reuse/shared_context")
        .expect("suite ran");
    let shared_over_cold = reuse_cold / reuse_shared;
    let lp_dense = r.mean_of("scale_ladder/lp_dense/k8").expect("suite ran");
    let lp_sparse = r.mean_of("scale_ladder/lp_sparse/k8").expect("suite ran");
    let sparse_over_dense = lp_dense / lp_sparse;
    // The greedy pass is ~O(flows * candidates): flows grow as k^3/4 and
    // candidates as k^2/4, so k=4 -> k=8 predicts ~2^5 = 32x; the bound
    // leaves headroom for constant-factor noise but catches an
    // accidental return to a super-polynomial substrate (the per-path
    // allocation regime this ladder was built to retire).
    let cons_k4 = r.min_of("scale_ladder/consolidate/k4").expect("suite ran");
    let cons_k8 = r.min_of("scale_ladder/consolidate/k8").expect("suite ran");
    let cons_blowup = cons_k8 / cons_k4;
    const CONS_BLOWUP_BOUND: f64 = 150.0;
    // One-shot samples: min == mean, but min_of documents the intent
    // (matched single-epoch conditions, no averaging across states).
    let pd_mono_s = r
        .min_of(&format!("pod_decomp/optimize/monolithic/k{pd_k}"))
        .expect("suite ran");
    let pd_dec_s = r
        .min_of(&format!("pod_decomp/optimize/decomposed/k{pd_k}"))
        .expect("suite ran");
    let pd_speedup = pd_mono_s / pd_dec_s;
    // One-sided, mirroring the differential suite's contract: the
    // decomposition may beat the order-myopic monolithic greedy (gap
    // negative), but must not cost more than 0.5 % of the objective.
    let pd_rel_gap = (pd_dec.0 - pd_mono.0) / pd_mono.0;
    let pd_verdicts_agree = pd_mono.1 == pd_dec.1;
    // The 3x target is calibrated for the full-run k=16 pair; at the
    // quick run's k=8 the pods are too small for the decomposition to
    // pay for its stitch phase, so `met` is advisory there and CI's
    // speedup gate reads the committed full-run BENCH instead.
    const PD_TARGET: f64 = 3.0;
    let (models, levels) = equiv_cache_stats();
    let report = Json::Obj(vec![
        ("schema".into(), Json::Str("eprons.bench.cluster/v1".into())),
        ("quick".into(), Json::Bool(quick())),
        ("seed".into(), Json::Num(BASE_SEED as f64)),
        (
            "threads".into(),
            Json::Obj(vec![
                ("serial_budget".into(), Json::Num(serial_budget as f64)),
                ("parallel_budget".into(), Json::Num(parallel_budget as f64)),
                ("host".into(), Json::Num(host_threads as f64)),
                (
                    "parallel_warm_skipped".into(),
                    match &parallel_skip {
                        Some(reason) => Json::Str(reason.clone()),
                        None => Json::Bool(false),
                    },
                ),
            ]),
        ),
        ("suites".into(), r.to_json()),
        (
            "speedup".into(),
            Json::Obj(vec![
                (
                    "optimize_total_power".into(),
                    Json::Obj(vec![
                        (
                            "parallel_over_serial".into(),
                            Json::Num(serial_warm / parallel_warm),
                        ),
                        (
                            "warm_cache_over_cold".into(),
                            Json::Num(serial_cold / serial_warm),
                        ),
                        ("combined".into(), Json::Num(combined)),
                        ("target".into(), Json::Num(2.0)),
                        ("met".into(), Json::Bool(combined >= 2.0)),
                    ]),
                ),
                (
                    "scenario_reuse".into(),
                    Json::Obj(vec![
                        ("shared_over_cold".into(), Json::Num(shared_over_cold)),
                        ("target".into(), Json::Num(1.5)),
                        ("met".into(), Json::Bool(shared_over_cold >= 1.5)),
                    ]),
                ),
                (
                    "ladder_warm_start".into(),
                    Json::Obj(vec![
                        (
                            "warm_over_cold".into(),
                            Json::Num(ladder_cold / ladder_warm),
                        ),
                        (
                            "chain_pivots_cold".into(),
                            Json::Num(chain_pivots_cold as f64),
                        ),
                        (
                            "chain_pivots_warm".into(),
                            Json::Num(chain_pivots_warm as f64),
                        ),
                        (
                            "pivots_reduced".into(),
                            Json::Bool(chain_pivots_warm < chain_pivots_cold),
                        ),
                    ]),
                ),
                (
                    "scale_ladder".into(),
                    Json::Obj(vec![
                        ("sparse_over_dense_k8".into(), Json::Num(sparse_over_dense)),
                        ("target".into(), Json::Num(5.0)),
                        ("met".into(), Json::Bool(sparse_over_dense >= 5.0)),
                        ("consolidate_k8_over_k4".into(), Json::Num(cons_blowup)),
                        ("blowup_bound".into(), Json::Num(CONS_BLOWUP_BOUND)),
                        (
                            "within_bound".into(),
                            Json::Bool(cons_blowup <= CONS_BLOWUP_BOUND),
                        ),
                    ]),
                ),
                (
                    "pod_decomp".into(),
                    Json::Obj(vec![
                        ("k".into(), Json::Num(pd_k as f64)),
                        ("decomposed_over_monolithic".into(), Json::Num(pd_speedup)),
                        ("target".into(), Json::Num(PD_TARGET)),
                        ("met".into(), Json::Bool(pd_speedup >= PD_TARGET)),
                        ("power_rel_gap".into(), Json::Num(pd_rel_gap)),
                        ("verdicts_agree".into(), Json::Bool(pd_verdicts_agree)),
                    ]),
                ),
            ]),
        ),
        (
            "equiv_cache".into(),
            Json::Obj(vec![
                ("models".into(), Json::Num(models as f64)),
                ("levels".into(), Json::Num(levels as f64)),
            ]),
        ),
    ]);
    let path = out_path();
    std::fs::write(&path, format!("{report}\n")).unwrap_or_else(|e| {
        eprintln!("failed to write {}: {e}", path.display());
        std::process::exit(1);
    });
    println!(
        "\nspeedup(optimize_total_power): parallel/serial {:.2}x, warm/cold {:.2}x, combined {:.2}x (target 2.0x, budgets {serial_budget}/{parallel_budget}, host {host_threads})",
        serial_warm / parallel_warm,
        serial_cold / serial_warm,
        combined,
    );
    println!(
        "speedup(scenario_reuse): shared/cold {shared_over_cold:.2}x (target 1.5x, 4-candidate sweep)"
    );
    println!(
        "speedup(ladder_warm_start): warm/cold {:.2}x, chain pivots {chain_pivots_cold} -> {chain_pivots_warm}",
        ladder_cold / ladder_warm,
    );
    println!(
        "speedup(scale_ladder): sparse/dense k8 LP {sparse_over_dense:.2}x (target 5.0x), consolidate k8/k4 {cons_blowup:.1}x (bound {CONS_BLOWUP_BOUND:.0}x)"
    );
    println!(
        "speedup(pod_decomp): decomposed/monolithic k{pd_k} {pd_speedup:.2}x (target {PD_TARGET:.1}x), objective gap {:+.3}%, verdicts agree: {pd_verdicts_agree}",
        pd_rel_gap * 100.0,
    );
    println!("wrote {}", path.display());
    finish();
}
