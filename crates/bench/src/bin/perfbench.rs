//! perfbench — the tracked performance benchmark for the sharded cluster
//! simulator (writes `BENCH_cluster.json` at the repo root).
//!
//! Three layers are timed, bottom up:
//!
//! * `convolve/*` — the FFT convolution kernel, with and without the
//!   thread-local plan cache (the plan-construction overhead the cache
//!   removes from every equivalent-request convolution);
//! * `vp_decision/*` — one VP-engine decision over a 16-deep queue, cold
//!   (shared equivalent-distribution cache cleared each iteration) and
//!   warm (ladder inherited from the process-wide cache);
//! * `run_cluster` / `optimize_total_power/*` — the end-to-end simulator
//!   and the 4-candidate aggregation-ladder optimizer, the last in three
//!   variants: serial with cold caches (the pre-sharding baseline shape),
//!   serial warm, and parallel warm (thread budget = host parallelism);
//! * `scenario_reuse/*` — the same 4-candidate sweep with a fresh
//!   `run_cluster` per candidate and cold caches (what every sweep paid
//!   before the staged pipeline) vs one shared `ScenarioContext`
//!   evaluated per candidate.
//!
//! The headline `speedup.optimize_total_power.combined` divides the
//! serial-cold mean by the parallel-warm mean: cache reuse is measurable
//! on any machine, thread scaling contributes on multi-core hosts (the
//! candidate × server shards are independent, so the parallel term
//! approaches the core count; on a single-core container it is ~1×).
//! `speedup.scenario_reuse.shared_over_cold` isolates the context-reuse
//! win itself (both variants walk candidates serially, so thread count
//! cannot flatter it).
//!
//! Flags: `--quick` (tiny durations for the CI smoke run), `--out <path>`
//! (default `<repo root>/BENCH_cluster.json`), `--journal <path>` (dump
//! the telemetry journal and summary tables, like the fig binaries).

use eprons_bench::harness::Runner;
use eprons_bench::{banner, finish, quick, BASE_SEED};
use eprons_core::scenario::{ScenarioContext, ScenarioSpec};
use eprons_core::{
    optimize_total_power, run_cluster, set_thread_budget, thread_budget, ClusterConfig,
    ClusterRun, ConsolidationSpec, ServerScheme,
};
use eprons_num::complex::Complex;
use eprons_num::conv::{clear_plan_cache, convolve_fft};
use eprons_num::fft::FftPlan;
use eprons_num::Pmf;
use eprons_obs::Json;
use eprons_server::{clear_equiv_cache, equiv_cache_stats, ServiceModel, VpEngine};
use eprons_topo::AggregationLevel;

fn out_path() -> std::path::PathBuf {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if a == "--out" {
            if let Some(p) = args.get(i + 1) {
                return p.into();
            }
            eprintln!("error: --out requires a path");
            std::process::exit(2);
        }
        if let Some(p) = a.strip_prefix("--out=") {
            return p.into();
        }
    }
    // crates/bench/../../ = repo root.
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_cluster.json")
}

fn main() {
    banner("perfbench", "tracked wall-clock benchmarks");
    let mut r = Runner::from_env();
    let host_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    // --- Convolution kernel. ---
    let taps: Vec<f64> = (0..700).map(|i| 1.0 / (i + 1) as f64).collect();
    r.bench("convolve/fft_planned/700x700", || convolve_fft(&taps, &taps));
    r.bench("convolve/fft_plan_per_call/2048", || {
        // What every call paid before the plan cache: build the twiddle
        // tables, transform, multiply, inverse.
        let n = 2048;
        let plan = FftPlan::new(n);
        let mut fa: Vec<Complex> = taps.iter().map(|&x| Complex::from_real(x)).collect();
        fa.resize(n, Complex::ZERO);
        let mut fb = fa.clone();
        plan.forward(&mut fa);
        plan.forward(&mut fb);
        for (x, y) in fa.iter_mut().zip(&fb) {
            *x *= *y;
        }
        plan.inverse(&mut fa);
        fa
    });

    // --- VP decisions. ---
    let service = ServiceModel::new(
        Pmf::from_masses(2.7e-4, 2.7e-4, vec![0.1, 0.3, 0.3, 0.2, 0.1]),
        0.1e-3,
    );
    let deadlines: Vec<f64> = (1..=16).map(|i| i as f64 * 2.0e-3).collect();
    r.bench("vp_decision/cold/queue16", || {
        clear_equiv_cache();
        let mut engine = VpEngine::new(service.clone());
        engine.decision(0.0, None, &deadlines).len()
    });
    clear_equiv_cache();
    let mut warm_engine = VpEngine::new(service.clone());
    let _ = warm_engine.decision(0.0, None, &deadlines);
    r.bench("vp_decision/warm/queue16", || {
        // Fresh engine each iteration, but the ladder comes from the
        // shared cache published by the previous one.
        let mut engine = VpEngine::new(service.clone());
        engine.decision(0.0, None, &deadlines).len()
    });

    // --- End-to-end cluster run. ---
    let cfg = ClusterConfig::default();
    let duration_s = if quick() { 0.25 } else { 2.0 };
    let cluster = ClusterRun {
        scheme: ServerScheme::EpronsServer,
        consolidation: ConsolidationSpec::GreedyK(2.0),
        server_utilization: 0.3,
        background_util: 0.2,
        duration_s,
        warmup_s: 0.0,
        seed: BASE_SEED,
    };
    r.bench("run_cluster/eprons_greedy", || {
        run_cluster(&cfg, &cluster).unwrap().cpu_power_w
    });

    // --- The 4-candidate aggregation-ladder optimizer. ---
    let template = ClusterRun {
        consolidation: ConsolidationSpec::AllOn,
        ..cluster.clone()
    };
    let candidates = [
        ConsolidationSpec::AllOn,
        ConsolidationSpec::Level(AggregationLevel::Agg1),
        ConsolidationSpec::Level(AggregationLevel::Agg2),
        ConsolidationSpec::Level(AggregationLevel::Agg3),
    ];
    set_thread_budget(Some(1));
    r.bench("optimize_total_power/agg_ladder/serial_cold", || {
        clear_equiv_cache();
        clear_plan_cache();
        optimize_total_power(&cfg, &template, &candidates).unwrap().spec
    });
    r.bench("optimize_total_power/agg_ladder/serial_warm", || {
        optimize_total_power(&cfg, &template, &candidates).unwrap().spec
    });
    set_thread_budget(None);
    let budget = thread_budget();
    r.bench("optimize_total_power/agg_ladder/parallel_warm", || {
        optimize_total_power(&cfg, &template, &candidates).unwrap().spec
    });

    // --- Scenario reuse: the staged pipeline's raison d'être. ---
    //
    // Both variants sweep the same 4 candidates serially so the measured
    // gap is context reuse alone. `cold_per_candidate` replays the
    // pre-staged shape — one `run_cluster` process-equivalent per
    // candidate, each rebuilding topology, service model, and workloads
    // from cold process-wide caches (the clears inside the loop model the
    // fresh-process-per-point sweep scripts this pipeline replaces).
    // `shared_context` builds one ScenarioContext and evaluates each
    // candidate against it.
    //
    // The scenario build is a *fixed* per-sweep cost (~2 ms: service-model
    // fit, workload generation) while candidate evaluation scales with the
    // simulated horizon, so this suite uses a short horizon to measure the
    // fixed cost the pipeline eliminates rather than drown it in
    // horizon-proportional DVFS simulation. The reuse win shrinks as
    // horizons grow; `run_cluster/eprons_greedy` above tracks the
    // long-horizon cost.
    let reuse_run = ClusterRun {
        duration_s: if quick() { 0.1 } else { 0.15 },
        ..cluster.clone()
    };
    set_thread_budget(Some(1));
    r.bench("scenario_reuse/cold_per_candidate", || {
        candidates
            .iter()
            .map(|&spec| {
                clear_equiv_cache();
                clear_plan_cache();
                let run = ClusterRun {
                    consolidation: spec,
                    ..reuse_run.clone()
                };
                run_cluster(&cfg, &run).unwrap().breakdown.total_w()
            })
            .sum::<f64>()
    });
    let sweep_spec = ScenarioSpec {
        server_utilization: reuse_run.server_utilization,
        background_util: reuse_run.background_util,
        duration_s: reuse_run.duration_s,
        warmup_s: reuse_run.warmup_s,
        seed: reuse_run.seed,
    };
    r.bench("scenario_reuse/shared_context", || {
        let ctx = ScenarioContext::build(&cfg, &sweep_spec);
        candidates
            .iter()
            .map(|&spec| {
                ctx.evaluate(ServerScheme::EpronsServer, spec)
                    .unwrap()
                    .breakdown
                    .total_w()
            })
            .sum::<f64>()
    });
    set_thread_budget(None);

    // --- Report. ---
    let serial_cold = r
        .mean_of("optimize_total_power/agg_ladder/serial_cold")
        .expect("suite ran");
    let serial_warm = r
        .mean_of("optimize_total_power/agg_ladder/serial_warm")
        .expect("suite ran");
    let parallel_warm = r
        .mean_of("optimize_total_power/agg_ladder/parallel_warm")
        .expect("suite ran");
    let combined = serial_cold / parallel_warm;
    let reuse_cold = r
        .mean_of("scenario_reuse/cold_per_candidate")
        .expect("suite ran");
    let reuse_shared = r
        .mean_of("scenario_reuse/shared_context")
        .expect("suite ran");
    let shared_over_cold = reuse_cold / reuse_shared;
    let (models, levels) = equiv_cache_stats();
    let report = Json::Obj(vec![
        ("schema".into(), Json::Str("eprons.bench.cluster/v1".into())),
        ("quick".into(), Json::Bool(quick())),
        ("seed".into(), Json::Num(BASE_SEED as f64)),
        (
            "threads".into(),
            Json::Obj(vec![
                ("budget".into(), Json::Num(budget as f64)),
                ("host".into(), Json::Num(host_threads as f64)),
            ]),
        ),
        ("suites".into(), r.to_json()),
        (
            "speedup".into(),
            Json::Obj(vec![
                (
                    "optimize_total_power".into(),
                    Json::Obj(vec![
                        (
                            "parallel_over_serial".into(),
                            Json::Num(serial_warm / parallel_warm),
                        ),
                        (
                            "warm_cache_over_cold".into(),
                            Json::Num(serial_cold / serial_warm),
                        ),
                        ("combined".into(), Json::Num(combined)),
                        ("target".into(), Json::Num(2.0)),
                        ("met".into(), Json::Bool(combined >= 2.0)),
                    ]),
                ),
                (
                    "scenario_reuse".into(),
                    Json::Obj(vec![
                        ("shared_over_cold".into(), Json::Num(shared_over_cold)),
                        ("target".into(), Json::Num(1.5)),
                        ("met".into(), Json::Bool(shared_over_cold >= 1.5)),
                    ]),
                ),
            ]),
        ),
        (
            "equiv_cache".into(),
            Json::Obj(vec![
                ("models".into(), Json::Num(models as f64)),
                ("levels".into(), Json::Num(levels as f64)),
            ]),
        ),
    ]);
    let path = out_path();
    std::fs::write(&path, format!("{report}\n")).unwrap_or_else(|e| {
        eprintln!("failed to write {}: {e}", path.display());
        std::process::exit(1);
    });
    println!(
        "\nspeedup(optimize_total_power): parallel/serial {:.2}x, warm/cold {:.2}x, combined {:.2}x (target 2.0x, budget {budget}, host {host_threads})",
        serial_warm / parallel_warm,
        serial_cold / serial_warm,
        combined,
    );
    println!(
        "speedup(scenario_reuse): shared/cold {shared_over_cold:.2}x (target 1.5x, 4-candidate sweep)"
    );
    println!("wrote {}", path.display());
    finish();
}
