//! Figure 12 — server power management in isolation (no network power
//! management; 20 % background traffic; full network on).
//!
//! (a) server utilization 10–50 % vs. CPU power at a 30 ms constraint
//!     (25 ms server + 5 ms network): ordering no-PM > Rubik > TimeTrader
//!     ≥ Rubik+ > EPRONS-Server (TimeTrader wins only at very low load);
//! (b) request tail-latency constraint 18–40 ms vs. CPU power at 30 %
//!     utilization: nothing meets <18 ms; EPRONS-Server lowest beyond;
//! (c) EPRONS-Server power across the (utilization × constraint) grid.

use eprons_bench::{banner, cfg_with_total_ms, sweep_duration_s, BASE_SEED};
use eprons_core::report::Table;
use eprons_core::{run_cluster, ClusterRun, ConsolidationSpec, ServerScheme};

fn run(
    scheme: ServerScheme,
    util: f64,
    total_ms: f64,
    seed: u64,
) -> eprons_core::ClusterRunResult {
    let cfg = cfg_with_total_ms(total_ms);
    run_cluster(
        &cfg,
        &ClusterRun {
            scheme,
            consolidation: ConsolidationSpec::AllOn,
            server_utilization: util,
            background_util: 0.2,
            duration_s: sweep_duration_s(),
            // TimeTrader's 5 s feedback loop must settle before scoring;
            // the per-request schemes are stationary from the start.
            warmup_s: if scheme == ServerScheme::TimeTrader {
                60.0
            } else {
                0.0
            },
            seed,
        },
    )
    .expect("all-on routing always succeeds")
}

fn main() {
    banner("Fig. 12", "server power sensitivity (CPU watts, 16 servers × 12 cores)");
    let schemes = ServerScheme::ALL;

    let mut a = Table::new(
        "(a) CPU power (W) vs server utilization, 30 ms constraint",
        &["util%", "no-pm", "rubik", "timetrader", "rubik+", "eprons"],
    );
    for util in [0.1, 0.2, 0.3, 0.4, 0.5] {
        let mut row = vec![format!("{:.0}", util * 100.0)];
        for s in schemes {
            let r = run(s, util, 30.0, BASE_SEED);
            row.push(format!("{:.1}", r.cpu_power_w));
        }
        a.row(&row);
    }
    println!("{a}");
    println!("paper shape (a): Rubik highest of the managed schemes; EPRONS-Server lowest everywhere;");
    println!("Rubik+ and EPRONS beat TimeTrader except possibly at 10% load\n");

    let mut b = Table::new(
        "(b) CPU power (W) and e2e miss rate vs tail-latency constraint, 30% utilization",
        &["constraint-ms", "no-pm", "rubik", "timetrader", "rubik+", "eprons", "eprons-miss%"],
    );
    for total in [18.0, 19.0, 20.0, 22.0, 25.0, 28.0, 31.0, 34.0, 37.0, 40.0] {
        let mut row = vec![format!("{total:.0}")];
        let mut eprons_miss = 0.0;
        for s in schemes {
            let r = run(s, 0.3, total, BASE_SEED + 1);
            row.push(format!("{:.1}", r.cpu_power_w));
            if s == ServerScheme::EpronsServer {
                eprons_miss = r.e2e_miss_rate;
            }
        }
        row.push(format!("{:.1}", eprons_miss * 100.0));
        b.row(&row);
    }
    println!("{b}");
    println!("paper shape (b): no scheme meets a constraint below ≈18 ms (miss rate explodes);");
    println!("power falls as the constraint loosens; EPRONS-Server lowest from ≈19 ms on\n");

    let mut c = Table::new(
        "(c) EPRONS-Server CPU power (W) across (utilization, constraint)",
        &["constraint-ms", "10%", "20%", "30%", "40%", "50%"],
    );
    for total in [19.0, 22.0, 25.0, 28.0, 31.0, 34.0, 37.0, 40.0] {
        let mut row = vec![format!("{total:.0}")];
        for util in [0.1, 0.2, 0.3, 0.4, 0.5] {
            let r = run(ServerScheme::EpronsServer, util, total, BASE_SEED + 2);
            row.push(format!("{:.1}", r.cpu_power_w));
        }
        c.row(&row);
    }
    println!("{c}");
    println!("paper shape (c): power drops steeply as the constraint first loosens, at every load");
    eprons_bench::finish();
}
