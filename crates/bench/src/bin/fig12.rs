//! Figure 12 — server power management in isolation (no network power
//! management; 20 % background traffic; full network on).
//!
//! (a) server utilization 10–50 % vs. CPU power at a 30 ms constraint
//!     (25 ms server + 5 ms network): ordering no-PM > Rubik > TimeTrader
//!     ≥ Rubik+ > EPRONS-Server (TimeTrader wins only at very low load);
//! (b) request tail-latency constraint 18–40 ms vs. CPU power at 30 %
//!     utilization: nothing meets <18 ms; EPRONS-Server lowest beyond;
//! (c) EPRONS-Server power across the (utilization × constraint) grid.
//!
//! The scenario build is SLA-independent, so each (utilization, seed)
//! point builds its workload once and sweeps the constraint axis through
//! [`ScenarioContext::with_sla`] — panel (b) shares 2 builds across its
//! 50 runs. TimeTrader needs its own context per point: its 5 s feedback
//! loop must settle, so it simulates a 60 s warmup the other schemes skip.

use eprons_bench::{banner, cfg_with_total_ms, sweep_duration_s, BASE_SEED};
use eprons_core::report::Table;
use eprons_core::scenario::{ScenarioContext, ScenarioSpec};
use eprons_core::{ConsolidationSpec, ServerScheme};

fn context(util: f64, total_ms: f64, seed: u64, warmup_s: f64) -> ScenarioContext {
    ScenarioContext::build(
        &cfg_with_total_ms(total_ms),
        &ScenarioSpec {
            server_utilization: util,
            background_util: 0.2,
            duration_s: sweep_duration_s(),
            warmup_s,
            seed,
        },
    )
}

/// TimeTrader's feedback loop needs warmup; everything else is stationary
/// from the first request and shares the warmup-free context.
fn scheme_ctx<'c>(
    scheme: ServerScheme,
    plain: &'c ScenarioContext,
    timetrader: &'c ScenarioContext,
) -> &'c ScenarioContext {
    if scheme == ServerScheme::TimeTrader {
        timetrader
    } else {
        plain
    }
}

fn main() {
    banner(
        "Fig. 12",
        "server power sensitivity (CPU watts, 16 servers × 12 cores)",
    );
    let schemes = ServerScheme::ALL;

    let mut a = Table::new(
        "(a) CPU power (W) vs server utilization, 30 ms constraint",
        &["util%", "no-pm", "rubik", "timetrader", "rubik+", "eprons"],
    );
    for util in [0.1, 0.2, 0.3, 0.4, 0.5] {
        let plain = context(util, 30.0, BASE_SEED, 0.0);
        let tt = context(util, 30.0, BASE_SEED, 60.0);
        let mut row = vec![format!("{:.0}", util * 100.0)];
        for s in schemes {
            let r = scheme_ctx(s, &plain, &tt)
                .evaluate(s, ConsolidationSpec::AllOn)
                .expect("all-on routing always succeeds");
            row.push(format!("{:.1}", r.cpu_power_w));
        }
        a.row(&row);
    }
    println!("{a}");
    println!(
        "paper shape (a): Rubik highest of the managed schemes; EPRONS-Server lowest everywhere;"
    );
    println!("Rubik+ and EPRONS beat TimeTrader except possibly at 10% load\n");

    let mut b = Table::new(
        "(b) CPU power (W) and e2e miss rate vs tail-latency constraint, 30% utilization",
        &[
            "constraint-ms",
            "no-pm",
            "rubik",
            "timetrader",
            "rubik+",
            "eprons",
            "eprons-miss%",
        ],
    );
    let plain_b = context(0.3, 30.0, BASE_SEED + 1, 0.0);
    let tt_b = context(0.3, 30.0, BASE_SEED + 1, 60.0);
    for total in [18.0, 19.0, 20.0, 22.0, 25.0, 28.0, 31.0, 34.0, 37.0, 40.0] {
        let sla = cfg_with_total_ms(total).sla;
        let mut row = vec![format!("{total:.0}")];
        let mut eprons_miss = 0.0;
        for s in schemes {
            let r = scheme_ctx(s, &plain_b, &tt_b)
                .with_sla(sla.clone())
                .evaluate(s, ConsolidationSpec::AllOn)
                .expect("all-on routing always succeeds");
            row.push(format!("{:.1}", r.cpu_power_w));
            if s == ServerScheme::EpronsServer {
                eprons_miss = r.e2e_miss_rate;
            }
        }
        row.push(format!("{:.1}", eprons_miss * 100.0));
        b.row(&row);
    }
    println!("{b}");
    println!("paper shape (b): no scheme meets a constraint below ≈18 ms (miss rate explodes);");
    println!("power falls as the constraint loosens; EPRONS-Server lowest from ≈19 ms on\n");

    let mut c = Table::new(
        "(c) EPRONS-Server CPU power (W) across (utilization, constraint)",
        &["constraint-ms", "10%", "20%", "30%", "40%", "50%"],
    );
    let contexts_c: Vec<ScenarioContext> = [0.1, 0.2, 0.3, 0.4, 0.5]
        .iter()
        .map(|&util| context(util, 30.0, BASE_SEED + 2, 0.0))
        .collect();
    for total in [19.0, 22.0, 25.0, 28.0, 31.0, 34.0, 37.0, 40.0] {
        let sla = cfg_with_total_ms(total).sla;
        let mut row = vec![format!("{total:.0}")];
        for ctx in &contexts_c {
            let r = ctx
                .with_sla(sla.clone())
                .evaluate(ServerScheme::EpronsServer, ConsolidationSpec::AllOn)
                .expect("all-on routing always succeeds");
            row.push(format!("{:.1}", r.cpu_power_w));
        }
        c.row(&row);
    }
    println!("{c}");
    println!("paper shape (c): power drops steeply as the constraint first loosens, at every load");
    eprons_bench::finish();
}
