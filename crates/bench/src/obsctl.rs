//! Journal analysis/audit engines behind the `obsctl` binary.
//!
//! A run journal (`--journal <path>` on any fig binary) is a JSON-lines
//! dump of typed [`eprons_obs::Event`]s. This module turns one (or two)
//! of those dumps into answers:
//!
//! * [`summarize`] — what happened: event counts, per-stage wall time
//!   (from the causal spans), per-epoch snapshots, day energy roll-ups.
//! * [`flame`] — collapsed-stack output (`a;b;leaf µs`) for
//!   `flamegraph.pl`/inferno, built from the span forest; parallel
//!   shards attach to their parent span by id, so fan-out work is
//!   attributed to the stage that spawned it.
//! * [`diff`] — order-insensitive comparison of two journals (kind
//!   counts, span-name counts, event multisets) with optional relative
//!   tolerances, for CI gating of determinism.
//! * [`audit`] — replay the journal and check the conservation
//!   invariants the simulator claims: power segments integrate to each
//!   epoch's snapshot energy, snapshots sum to the day roll-up, repair
//!   boot energy reconciles against `RepairOutcome` events, and every
//!   optimizer search commits at most one winner per epoch.
//!
//! Everything here is pure over `&[JournalEntry]` so the library is unit
//! testable without touching the process-global telemetry sinks.

use std::collections::{BTreeMap, HashMap};
use std::path::Path;

use eprons_core::report::{
    journal_daycache_table, journal_epoch_table, journal_kind_table, journal_online_table,
    journal_pods_table, Table,
};
use eprons_obs::{Event, JournalEntry, Snapshot};

/// Reads and parses a JSON-lines journal dump.
///
/// # Errors
/// Reports I/O failures and the first malformed line.
pub fn load(path: &Path) -> Result<Vec<JournalEntry>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    eprons_obs::parse_jsonl(&text).map_err(|e| format!("{}: {e}", path.display()))
}

// ---------------------------------------------------------------------------
// Span forest
// ---------------------------------------------------------------------------

/// One reconstructed span: a `SpanStart` joined with its `SpanEnd`.
#[derive(Debug, Clone)]
pub struct SpanRec {
    pub id: u64,
    pub parent: u64,
    pub thread: u64,
    pub name: String,
    /// Seconds since the process telemetry epoch.
    pub start_s: f64,
    /// `None` when the journal holds no matching `SpanEnd`.
    pub elapsed_s: Option<f64>,
    pub detail: String,
    /// Indices into [`SpanForest::spans`].
    pub children: Vec<usize>,
}

/// All spans of a journal with parent/child edges resolved.
#[derive(Debug, Default)]
pub struct SpanForest {
    pub spans: Vec<SpanRec>,
    /// Indices of spans with no (known) parent.
    pub roots: Vec<usize>,
    /// Structural problems found while joining starts and ends —
    /// non-empty means the journal is incomplete or corrupt.
    pub errors: Vec<String>,
    index: HashMap<u64, usize>,
}

impl SpanForest {
    /// Looks a span up by its process-wide id.
    pub fn by_id(&self, id: u64) -> Option<&SpanRec> {
        self.index.get(&id).map(|&i| &self.spans[i])
    }

    /// Wall seconds spent in `spans[i]` itself, excluding child spans
    /// (clamped at zero: parallel children can sum past the parent).
    pub fn self_s(&self, i: usize) -> f64 {
        let s = &self.spans[i];
        let Some(elapsed) = s.elapsed_s else {
            return 0.0;
        };
        let in_children: f64 = s
            .children
            .iter()
            .filter_map(|&c| self.spans[c].elapsed_s)
            .sum();
        (elapsed - in_children).max(0.0)
    }
}

/// Joins `SpanStart`/`SpanEnd` events into a [`SpanForest`].
pub fn span_forest(entries: &[JournalEntry]) -> SpanForest {
    let mut f = SpanForest::default();
    for e in entries {
        match &e.event {
            Event::SpanStart {
                id,
                parent,
                thread,
                name,
                start_s,
            } => {
                if f.index.contains_key(id) {
                    f.errors.push(format!("duplicate span id {id} ({name})"));
                    continue;
                }
                f.index.insert(*id, f.spans.len());
                f.spans.push(SpanRec {
                    id: *id,
                    parent: *parent,
                    thread: *thread,
                    name: name.clone(),
                    start_s: *start_s,
                    elapsed_s: None,
                    detail: String::new(),
                    children: Vec::new(),
                });
            }
            Event::SpanEnd {
                id,
                name,
                elapsed_s,
                detail,
            } => match f.index.get(id) {
                Some(&i) => {
                    if f.spans[i].elapsed_s.is_some() {
                        f.errors.push(format!("span {id} ({name}) ended twice"));
                    }
                    f.spans[i].elapsed_s = Some(*elapsed_s);
                    f.spans[i].detail = detail.clone();
                }
                None => f
                    .errors
                    .push(format!("SpanEnd {id} ({name}) without a SpanStart")),
            },
            _ => {}
        }
    }
    for i in 0..f.spans.len() {
        let parent = f.spans[i].parent;
        if parent == eprons_obs::NO_SPAN {
            f.roots.push(i);
        } else {
            match f.index.get(&parent) {
                Some(&p) => f.spans[p].children.push(i),
                None => {
                    let s = &f.spans[i];
                    f.errors.push(format!(
                        "span {} ({}) has unknown parent {parent}",
                        s.id, s.name
                    ));
                    f.roots.push(i);
                }
            }
        }
    }
    for s in &f.spans {
        if s.elapsed_s.is_none() {
            f.errors
                .push(format!("span {} ({}) never ended", s.id, s.name));
        }
    }
    f
}

// ---------------------------------------------------------------------------
// summarize
// ---------------------------------------------------------------------------

/// Renders the "what happened" tables for one journal: event kinds,
/// per-span wall-time attribution (total and self), per-epoch wall time,
/// the epoch snapshot timeline, and the day energy roll-ups.
pub fn summarize(entries: &[JournalEntry]) -> String {
    let mut out = String::new();
    out.push_str(&journal_kind_table(entries).to_string());

    let f = span_forest(entries);
    if !f.spans.is_empty() {
        // Per-stage attribution: count, total wall, self wall by name.
        let mut agg: BTreeMap<&str, (u64, f64, f64)> = BTreeMap::new();
        for (i, s) in f.spans.iter().enumerate() {
            let a = agg.entry(s.name.as_str()).or_insert((0, 0.0, 0.0));
            a.0 += 1;
            a.1 += s.elapsed_s.unwrap_or(0.0);
            a.2 += f.self_s(i);
        }
        let mut rows: Vec<(&str, u64, f64, f64)> =
            agg.into_iter().map(|(n, (c, t, s))| (n, c, t, s)).collect();
        rows.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite").then(a.0.cmp(b.0)));
        let mut t = Table::new(
            "span wall-time by stage",
            &["span", "count", "total_s", "self_s"],
        );
        for (name, count, total, self_s) in rows {
            t.row(&[
                name.to_string(),
                count.to_string(),
                format!("{total:.4}"),
                format!("{self_s:.4}"),
            ]);
        }
        out.push('\n');
        out.push_str(&t.to_string());

        // Per-epoch wall time, recovered from the epoch spans' notes.
        let mut epochs: Vec<(u64, f64, String)> = f
            .spans
            .iter()
            .filter(|s| s.name == "epoch")
            .filter_map(|s| {
                let e = parse_detail_u64(&s.detail, "epoch")?;
                Some((e, s.elapsed_s.unwrap_or(0.0), s.detail.clone()))
            })
            .collect();
        if !epochs.is_empty() {
            epochs.sort_by_key(|&(e, _, _)| e);
            let mut t = Table::new("epoch wall-time", &["epoch", "wall_s", "detail"]);
            for (e, wall, detail) in epochs {
                t.row(&[e.to_string(), format!("{wall:.4}"), detail]);
            }
            out.push('\n');
            out.push_str(&t.to_string());
        }
    }

    let epoch_table = journal_epoch_table(entries);
    if !epoch_table.is_empty() {
        out.push('\n');
        out.push_str(&epoch_table.to_string());
    }
    let pods_table = journal_pods_table(entries);
    if !pods_table.is_empty() {
        out.push('\n');
        out.push_str(&pods_table.to_string());
    }
    let online_table = journal_online_table(entries);
    if !online_table.is_empty() {
        out.push('\n');
        out.push_str(&online_table.to_string());
    }
    let daycache_table = journal_daycache_table(entries);
    if !daycache_table.is_empty() {
        out.push('\n');
        out.push_str(&daycache_table.to_string());
    }
    for e in entries {
        if let Event::DayEnergy {
            strategy,
            epochs,
            energy_j,
            boot_energy_j,
        } = &e.event
        {
            out.push_str(&format!(
                "\nday energy ({strategy}): {energy_j:.1} J over {epochs} epochs \
                 (boot/repair share {boot_energy_j:.1} J)\n"
            ));
        }
    }
    if let Some(cov) = flame_leaf_coverage(entries) {
        out.push_str(&format!(
            "\nflame attribution: {:.1}% of day wall-time lands on leaf spans\n",
            cov * 100.0
        ));
    }
    out
}

/// Extracts `key=<u64>` from a span's detail string.
fn parse_detail_u64(detail: &str, key: &str) -> Option<u64> {
    detail.split_whitespace().find_map(|tok| {
        tok.strip_prefix(key)
            .and_then(|r| r.strip_prefix('='))
            .and_then(|v| v.parse().ok())
    })
}

// ---------------------------------------------------------------------------
// flame
// ---------------------------------------------------------------------------

/// Collapsed-stack flame output: one `root;child;leaf <µs>` line per
/// distinct span path, value = the path's *self* wall-time in integer
/// microseconds (zero-self paths are dropped). Feed to `flamegraph.pl`
/// or inferno. Cross-thread spans (epoch fan-out, server shards,
/// candidate fan-out) fold under their causal parent, not their thread.
pub fn flame(entries: &[JournalEntry]) -> String {
    let f = span_forest(entries);
    let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
    // Path from each span to its root, following parent edges.
    for (i, s) in f.spans.iter().enumerate() {
        let self_us = (f.self_s(i) * 1.0e6).round() as u64;
        if self_us == 0 {
            continue;
        }
        let mut names = vec![s.name.as_str()];
        let mut cur = s.parent;
        while cur != eprons_obs::NO_SPAN {
            match f.by_id(cur) {
                Some(p) => {
                    names.push(p.name.as_str());
                    cur = p.parent;
                }
                None => break,
            }
        }
        names.reverse();
        *stacks.entry(names.join(";")).or_insert(0) += self_us;
    }
    let mut out = String::new();
    for (stack, us) in stacks {
        out.push_str(&format!("{stack} {us}\n"));
    }
    out
}

/// Fraction of `day`-span wall-time covered by leaf spans (spans with no
/// children), measured as the union of leaf intervals clipped to the day
/// window — the acceptance metric for flame attribution. `None` when the
/// journal has no completed `day` span.
pub fn flame_leaf_coverage(entries: &[JournalEntry]) -> Option<f64> {
    let f = span_forest(entries);
    let mut day_total = 0.0;
    let mut covered = 0.0;
    for &di in f.roots.iter().filter(|&&i| f.spans[i].name == "day") {
        let day = &f.spans[di];
        let Some(day_elapsed) = day.elapsed_s else {
            continue;
        };
        let (d0, d1) = (day.start_s, day.start_s + day_elapsed);
        // Collect leaf intervals in this day's subtree.
        let mut ivs: Vec<(f64, f64)> = Vec::new();
        let mut stack = vec![di];
        while let Some(i) = stack.pop() {
            let s = &f.spans[i];
            stack.extend(&s.children);
            if i == di || !s.children.is_empty() {
                continue;
            }
            if let Some(e) = s.elapsed_s {
                let (a, b) = (s.start_s.max(d0), (s.start_s + e).min(d1));
                if b > a {
                    ivs.push((a, b));
                }
            }
        }
        ivs.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("finite"));
        let mut union = 0.0;
        let mut cur: Option<(f64, f64)> = None;
        for (a, b) in ivs {
            match &mut cur {
                Some((_, ce)) if a <= *ce => *ce = ce.max(b),
                _ => {
                    if let Some((cs, ce)) = cur {
                        union += ce - cs;
                    }
                    cur = Some((a, b));
                }
            }
        }
        if let Some((cs, ce)) = cur {
            union += ce - cs;
        }
        day_total += d1 - d0;
        covered += union;
    }
    (day_total > 0.0).then(|| covered / day_total)
}

// ---------------------------------------------------------------------------
// diff
// ---------------------------------------------------------------------------

/// Tolerances for [`diff`].
#[derive(Debug, Clone, Default)]
pub struct DiffOptions {
    /// Relative tolerance on numeric event fields. `0.0` (default)
    /// demands bit-identical event multisets — the CI determinism gate.
    /// Positive values relax the comparison to per-epoch snapshots and
    /// day-energy roll-ups matched by key.
    pub rel_tol: f64,
    /// When set, per-span-name total wall times whose relative gap
    /// exceeds this are reported too (timings are nondeterministic, so
    /// they are ignored by default).
    pub time_tol: Option<f64>,
}

/// `|a − b| ≤ tol · max(|a|, |b|, 1)` — relative with an absolute floor
/// so exact zeros compare clean.
fn within(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0)
}

/// Timing-independent event payload: the JSON line with the `seq` field
/// pinned to zero.
fn canonical_line(event: &Event) -> String {
    JournalEntry {
        seq: 0,
        event: event.clone(),
    }
    .to_json_line()
}

/// Span ids/timings vary run to run even on identical seeds; everything
/// else in a journal is deterministic and diffable as a multiset.
fn is_timing_event(event: &Event) -> bool {
    matches!(
        event,
        Event::SpanStart { .. } | Event::SpanEnd { .. } | Event::ClockSkew { .. }
    )
}

/// Order-insensitive comparison of two journals. Returns one line per
/// difference; an empty vector means the journals agree (under the given
/// tolerances). Span ids, span timings, and sequence numbers never
/// count as differences.
pub fn diff(a: &[JournalEntry], b: &[JournalEntry], opts: &DiffOptions) -> Vec<String> {
    let mut out = Vec::new();

    // 1. Event-kind counts.
    let kind_counts = |es: &[JournalEntry]| -> BTreeMap<&'static str, i64> {
        let mut m = BTreeMap::new();
        for e in es {
            *m.entry(e.event.kind()).or_insert(0) += 1;
        }
        m
    };
    let (ka, kb) = (kind_counts(a), kind_counts(b));
    for kind in ka
        .keys()
        .copied()
        .chain(kb.keys().copied())
        .collect::<std::collections::BTreeSet<_>>()
    {
        let (na, nb) = (
            ka.get(kind).copied().unwrap_or(0),
            kb.get(kind).copied().unwrap_or(0),
        );
        if na != nb {
            out.push(format!("event count {kind}: {na} vs {nb}"));
        }
    }

    // 2. Span-name counts (structure without ids/timings).
    let name_counts = |es: &[JournalEntry]| -> BTreeMap<String, i64> {
        let mut m = BTreeMap::new();
        for e in es {
            if let Event::SpanStart { name, .. } = &e.event {
                *m.entry(name.clone()).or_insert(0) += 1;
            }
        }
        m
    };
    let (sa, sb) = (name_counts(a), name_counts(b));
    for name in sa
        .keys()
        .chain(sb.keys())
        .collect::<std::collections::BTreeSet<_>>()
    {
        let (na, nb) = (
            sa.get(name).copied().unwrap_or(0),
            sb.get(name).copied().unwrap_or(0),
        );
        if na != nb {
            out.push(format!("span count {name}: {na} vs {nb}"));
        }
    }

    // 3. Payloads.
    if opts.rel_tol == 0.0 {
        // Exact multiset of every non-timing event.
        let mut bag: BTreeMap<String, i64> = BTreeMap::new();
        for e in a.iter().filter(|e| !is_timing_event(&e.event)) {
            *bag.entry(canonical_line(&e.event)).or_insert(0) += 1;
        }
        for e in b.iter().filter(|e| !is_timing_event(&e.event)) {
            *bag.entry(canonical_line(&e.event)).or_insert(0) -= 1;
        }
        let mut mismatched: Vec<String> = bag
            .into_iter()
            .filter(|&(_, n)| n != 0)
            .map(|(line, n)| {
                let side = if n > 0 {
                    "only in first"
                } else {
                    "only in second"
                };
                format!("{side} (×{}): {line}", n.abs())
            })
            .collect();
        let extra = mismatched.len().saturating_sub(8);
        mismatched.truncate(8);
        out.extend(mismatched);
        if extra > 0 {
            out.push(format!("... and {extra} more event payload difference(s)"));
        }
    } else {
        // Tolerant mode: snapshots matched by (strategy, epoch,
        // occurrence), day energies by (strategy, occurrence).
        let snaps = |es: &[JournalEntry]| -> BTreeMap<(String, u64, usize), Snapshot> {
            let mut seen: HashMap<(String, u64), usize> = HashMap::new();
            let mut m = BTreeMap::new();
            for e in es {
                if let Event::EpochSnapshot(s) = &e.event {
                    let k = (s.strategy.clone(), s.epoch);
                    let occ = seen.entry(k.clone()).or_insert(0);
                    m.insert((k.0, k.1, *occ), s.clone());
                    *occ += 1;
                }
            }
            m
        };
        let (ma, mb) = (snaps(a), snaps(b));
        for (key, s1) in &ma {
            let Some(s2) = mb.get(key) else {
                out.push(format!(
                    "snapshot {}/epoch {} missing from second journal",
                    key.0, key.1
                ));
                continue;
            };
            let fields = [
                ("server_w", s1.server_w, s2.server_w),
                ("network_w", s1.network_w, s2.network_w),
                ("e2e_p95_us", s1.e2e_p95_us, s2.e2e_p95_us),
                ("boot_energy_j", s1.boot_energy_j, s2.boot_energy_j),
            ];
            for (name, v1, v2) in fields {
                if !within(v1, v2, opts.rel_tol) {
                    out.push(format!(
                        "snapshot {}/epoch {}: {name} {v1} vs {v2} (tol {})",
                        key.0, key.1, opts.rel_tol
                    ));
                }
            }
            if s1.choice != s2.choice || s1.feasible != s2.feasible {
                out.push(format!(
                    "snapshot {}/epoch {}: choice/feasible {}:{} vs {}:{}",
                    key.0, key.1, s1.choice, s1.feasible, s2.choice, s2.feasible
                ));
            }
        }
        for key in mb.keys().filter(|k| !ma.contains_key(*k)) {
            out.push(format!(
                "snapshot {}/epoch {} missing from first journal",
                key.0, key.1
            ));
        }
        let days = |es: &[JournalEntry]| -> Vec<(String, f64, f64)> {
            es.iter()
                .filter_map(|e| match &e.event {
                    Event::DayEnergy {
                        strategy,
                        energy_j,
                        boot_energy_j,
                        ..
                    } => Some((strategy.clone(), *energy_j, *boot_energy_j)),
                    _ => None,
                })
                .collect()
        };
        for (i, ((s1, e1, b1), (s2, e2, b2))) in days(a).iter().zip(days(b).iter()).enumerate() {
            if s1 != s2 || !within(*e1, *e2, opts.rel_tol) || !within(*b1, *b2, opts.rel_tol) {
                out.push(format!(
                    "day energy #{i}: {s1} {e1:.3}/{b1:.3} J vs {s2} {e2:.3}/{b2:.3} J"
                ));
            }
        }
    }

    // 4. Optional span-timing comparison.
    if let Some(tol) = opts.time_tol {
        let totals = |es: &[JournalEntry]| -> BTreeMap<String, f64> {
            let mut m = BTreeMap::new();
            for e in es {
                if let Event::SpanEnd {
                    name, elapsed_s, ..
                } = &e.event
                {
                    *m.entry(name.clone()).or_insert(0.0) += elapsed_s;
                }
            }
            m
        };
        let (ta, tb) = (totals(a), totals(b));
        for name in ta
            .keys()
            .chain(tb.keys())
            .collect::<std::collections::BTreeSet<_>>()
        {
            let (v1, v2) = (
                ta.get(name).copied().unwrap_or(0.0),
                tb.get(name).copied().unwrap_or(0.0),
            );
            // Relative gate without the absolute floor (these are small
            // wall-times), plus a noise floor so µs-scale spans pass.
            let gap = (v1 - v2).abs();
            if v1.max(v2) > 1.0e-4 && gap > tol * v1.max(v2) {
                out.push(format!(
                    "span time {name}: {v1:.4}s vs {v2:.4}s (tol {tol})"
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// audit
// ---------------------------------------------------------------------------

/// What [`audit`] found.
#[derive(Debug, Default)]
pub struct AuditReport {
    /// Broken invariants; empty means the journal is conservation-clean.
    pub violations: Vec<String>,
    /// Checks that were skipped and why (e.g. interleaved parallel
    /// epochs make the winner-per-window check unreadable).
    pub notes: Vec<String>,
    /// Day sweeps audited.
    pub days: usize,
    /// Epoch snapshots reconciled.
    pub epochs: usize,
    /// Power segments integrated.
    pub segments: usize,
    /// Pod-decomposed consolidation passes checked for per-pod span
    /// coverage and round-0 conservation.
    pub pod_passes: usize,
    /// Hysteresis holds seen (online-controller days).
    pub holds: usize,
    /// Megabit-minutes of deferred demand whose conservation was checked.
    pub deferred_mbps_min: f64,
}

impl AuditReport {
    /// `true` iff no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut out = format!(
            "audited {} day sweep(s), {} epoch(s), {} power segment(s)\n",
            self.days, self.epochs, self.segments
        );
        if self.pod_passes > 0 {
            out.push_str(&format!(
                "audited {} pod-decomposed consolidation pass(es)\n",
                self.pod_passes
            ));
        }
        if self.holds > 0 || self.deferred_mbps_min > 0.0 {
            out.push_str(&format!(
                "audited online controller: {} hysteresis hold(s), \
                 {:.1} mbps-min deferred\n",
                self.holds, self.deferred_mbps_min
            ));
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        if self.violations.is_empty() {
            out.push_str("OK: all conservation invariants hold\n");
        } else {
            for v in &self.violations {
                out.push_str(&format!("VIOLATION: {v}\n"));
            }
        }
        out
    }
}

/// Replays a journal and checks its conservation invariants at relative
/// tolerance `rel_tol` (CI uses `1e-9`; segment sums agree with the
/// controller's accumulators to machine precision by construction):
///
/// 1. **Span integrity** — every `SpanEnd` has a `SpanStart`, parents
///    resolve, nothing dangles.
/// 2. **Per-epoch power** — each epoch's `PowerSegment`s tile its window
///    exactly and integrate to the snapshot's average power.
/// 3. **Repair energy** — each epoch's snapshot `boot_energy_j` equals
///    the sum of its `RepairOutcome` charges (events binned half-open
///    into the epoch windows, matching the controller).
/// 4. **Day energy** — snapshot energies (+ boot) sum to the `DayEnergy`
///    roll-up, and its boot share matches.
/// 5. **Winner uniqueness** — per serial epoch window, at least one
///    `OptimizerChoice`, at most one per `optimizer.search`, and the
///    committed snapshot carries the last choice's label.
/// 6. **Pod coverage** — every pod-decomposed pass that did not fall
///    back covers each pod exactly once in round 0 (one
///    `pod.consolidate` span per pod, `pod=P of=N` notes span `0..N`),
///    `solved + cached = pods` on each `PodConsolidation` event, and
///    the span-level cache-hit/resolve tallies reconcile with the
///    event-level `net.pods.*` tallies.
/// 7. **Deferral conservation** — per day, every megabit-minute a
///    `DeferralEnqueued` event adds to the online controller's queue is
///    eventually accounted by a `DeferralDrained` event as drained or
///    dropped; the books must close exactly because the controller
///    flushes leftovers as dropped at the day boundary.
pub fn audit(entries: &[JournalEntry], rel_tol: f64) -> AuditReport {
    let mut r = AuditReport::default();

    let forest = span_forest(entries);
    r.violations.extend(forest.errors.iter().cloned());
    audit_pods(entries, &forest, &mut r);

    // Split into day sweeps at DayStart boundaries (simulate_day calls
    // are serial; everything a day records lands before the next
    // DayStart).
    let starts: Vec<usize> = entries
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e.event, Event::DayStart { .. }))
        .map(|(i, _)| i)
        .collect();
    for (d, &lo) in starts.iter().enumerate() {
        let hi = starts.get(d + 1).copied().unwrap_or(entries.len());
        let group = &entries[lo..hi];
        let Event::DayStart { strategy, epochs } = &group[0].event else {
            unreachable!("boundaries are DayStart positions");
        };
        let tag = format!("day {d} ({strategy})");
        r.days += 1;
        audit_day(group, &tag, *epochs, rel_tol, &mut r);
    }
    r
}

/// Pod-decomposition coverage and conservation (check 6). Runs over the
/// whole journal, not per day: perfbench journals consolidate without a
/// `DayStart`, and the span↔event pairing is per pass either way.
fn audit_pods(entries: &[JournalEntry], f: &SpanForest, r: &mut AuditReport) {
    // Event side: round-0 conservation and clean/fallback tallies.
    let (mut ev_pass, mut ev_fallback) = (0usize, 0usize);
    let (mut ev_resolves, mut ev_cached) = (0u64, 0u64);
    for e in entries {
        if let Event::PodConsolidation {
            pods,
            solved,
            cached,
            resolves,
            fallback,
            ..
        } = &e.event
        {
            if *fallback {
                ev_fallback += 1;
                continue;
            }
            if solved + cached != *pods {
                r.violations.push(format!(
                    "pod pass #{ev_pass}: round 0 solved {solved} + cached {cached} \
                     ≠ {pods} pod(s)"
                ));
            }
            ev_pass += 1;
            ev_resolves += resolves;
            ev_cached += cached;
        }
    }

    // Span side: each clean pass's round-0 children cover 0..pods once.
    let (mut sp_pass, mut sp_fallback) = (0usize, 0usize);
    let (mut sp_resolves, mut sp_cached) = (0u64, 0u64);
    let passes = f
        .spans
        .iter()
        .filter(|s| s.name == "net.consolidate" && s.detail.contains("algo=pod_decomposed"));
    for s in passes {
        if s.detail.contains("fallback=") {
            sp_fallback += 1;
            continue;
        }
        sp_pass += 1;
        let Some(n) = parse_detail_u64(&s.detail, "pods") else {
            r.violations.push(format!(
                "pod pass span {}: no pods= note in '{}'",
                s.id, s.detail
            ));
            continue;
        };
        let mut round0 = vec![0u64; n as usize];
        for &c in &s.children {
            let c = &f.spans[c];
            if c.name != "pod.consolidate" {
                continue;
            }
            let Some(p) = parse_detail_u64(&c.detail, "pod") else {
                r.violations
                    .push(format!("pod.consolidate span {}: no pod= note", c.id));
                continue;
            };
            if parse_detail_u64(&c.detail, "of") != Some(n) {
                r.violations.push(format!(
                    "pod.consolidate span {}: of≠{n} in '{}'",
                    c.id, c.detail
                ));
            }
            if p >= n {
                r.violations.push(format!(
                    "pod.consolidate span {}: pod={p} out of range 0..{n}",
                    c.id
                ));
                continue;
            }
            if c.detail.contains("resolve=true") {
                sp_resolves += 1;
            } else {
                if c.detail.contains("cached=true") {
                    sp_cached += 1;
                }
                round0[p as usize] += 1;
            }
        }
        for (p, &count) in round0.iter().enumerate() {
            if count != 1 {
                r.violations.push(format!(
                    "pod pass span {}: pod {p} has {count} round-0 span(s), expected 1",
                    s.id
                ));
            }
        }
    }

    if ev_pass + ev_fallback + sp_pass + sp_fallback == 0 {
        return; // journal never took the pod-decomposed path
    }
    r.pod_passes = ev_pass + ev_fallback;
    if (sp_pass, sp_fallback) != (ev_pass, ev_fallback) {
        r.violations.push(format!(
            "pod passes: {sp_pass} clean + {sp_fallback} fallback span(s) vs \
             {ev_pass} + {ev_fallback} PodConsolidation event(s)"
        ));
        return; // aggregate reconciliation is meaningless on a mismatch
    }
    if sp_cached != ev_cached {
        r.violations.push(format!(
            "pod cache hits: {sp_cached} cached=true span(s) vs {ev_cached} on events"
        ));
    }
    if sp_resolves != ev_resolves {
        r.violations.push(format!(
            "pod resolves: {sp_resolves} resolve=true span(s) vs {ev_resolves} on events"
        ));
    }
}

fn audit_day(group: &[JournalEntry], tag: &str, epochs: u64, rel_tol: f64, r: &mut AuditReport) {
    // --- Snapshots: exactly one per epoch index. ---
    let mut snaps: BTreeMap<u64, (usize, Snapshot)> = BTreeMap::new();
    for (pos, e) in group.iter().enumerate() {
        if let Event::EpochSnapshot(s) = &e.event {
            if snaps.insert(s.epoch, (pos, s.clone())).is_some() {
                r.violations
                    .push(format!("{tag}: epoch {} committed twice", s.epoch));
            }
        }
    }
    if snaps.len() as u64 != epochs {
        r.violations.push(format!(
            "{tag}: {} epoch snapshot(s) for {epochs} announced epoch(s)",
            snaps.len()
        ));
    }
    r.epochs += snaps.len();

    // --- Power segments tile each epoch window and integrate to the
    // snapshot's average power. ---
    let mut segs: BTreeMap<u64, Vec<(f64, f64, f64)>> = BTreeMap::new();
    for e in group {
        if let Event::PowerSegment {
            epoch,
            from_min,
            to_min,
            server_w,
            network_w,
        } = &e.event
        {
            segs.entry(*epoch)
                .or_default()
                .push((*from_min, *to_min, server_w + network_w));
        }
    }
    let mut windows: BTreeMap<u64, (f64, f64)> = BTreeMap::new();
    for (&epoch, segs) in segs.iter_mut() {
        segs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite minutes"));
        r.segments += segs.len();
        let (w0, w1) = (segs[0].0, segs[segs.len() - 1].1);
        for w in segs.windows(2) {
            if (w[0].1 - w[1].0).abs() > 1.0e-6 {
                r.violations.push(format!(
                    "{tag}: epoch {epoch} power segments leave a gap at minute {:.4}",
                    w[0].1
                ));
            }
        }
        windows.insert(epoch, (w0, w1));
        let Some((_, snap)) = snaps.get(&epoch) else {
            r.violations.push(format!(
                "{tag}: power segments for epoch {epoch} but no snapshot"
            ));
            continue;
        };
        let seg_energy_j: f64 = segs.iter().map(|&(a, b, w)| w * (b - a) * 60.0).sum();
        let snap_energy_j = snap.total_w() * (w1 - w0) * 60.0;
        if !within(seg_energy_j, snap_energy_j, rel_tol) {
            r.violations.push(format!(
                "{tag}: epoch {epoch} segment energy {seg_energy_j:.6} J ≠ \
                 snapshot energy {snap_energy_j:.6} J"
            ));
        }
    }
    for &epoch in snaps.keys() {
        if !segs.contains_key(&epoch) {
            r.violations
                .push(format!("{tag}: epoch {epoch} has no power segments"));
        }
    }

    // --- Repair boot energy reconciles per epoch and for the day. ---
    let outcomes: Vec<(f64, f64)> = group
        .iter()
        .filter_map(|e| match &e.event {
            Event::RepairOutcome {
                minute,
                boot_energy_j,
                ..
            } => Some((*minute, *boot_energy_j)),
            _ => None,
        })
        .collect();
    for (&epoch, &(w0, w1)) in &windows {
        let Some((_, snap)) = snaps.get(&epoch) else {
            continue;
        };
        // Half-open [w0, w1): the same binning `events_in` used when the
        // controller charged the epoch.
        let repaired_j: f64 = outcomes
            .iter()
            .filter(|&&(m, _)| m >= w0 && m < w1)
            .map(|&(_, j)| j)
            .sum();
        if !within(repaired_j, snap.boot_energy_j, rel_tol) {
            r.violations.push(format!(
                "{tag}: epoch {epoch} RepairOutcome boot {repaired_j:.4} J ≠ \
                 snapshot boot {:.4} J",
                snap.boot_energy_j
            ));
        }
    }
    let outcome_boot_j: f64 = outcomes.iter().map(|&(_, j)| j).sum();
    let snap_boot_j: f64 = snaps.values().map(|(_, s)| s.boot_energy_j).sum();
    if !within(outcome_boot_j, snap_boot_j, rel_tol) {
        r.violations.push(format!(
            "{tag}: total RepairOutcome boot {outcome_boot_j:.4} J ≠ \
             snapshot boot total {snap_boot_j:.4} J"
        ));
    }

    // --- Day energy roll-up. ---
    let day_energy = group.iter().find_map(|e| match &e.event {
        Event::DayEnergy {
            epochs,
            energy_j,
            boot_energy_j,
            ..
        } => Some((*epochs, *energy_j, *boot_energy_j)),
        _ => None,
    });
    match day_energy {
        Some((de_epochs, de_energy_j, de_boot_j)) => {
            if de_epochs != snaps.len() as u64 {
                r.violations.push(format!(
                    "{tag}: DayEnergy covers {de_epochs} epochs, journal holds {}",
                    snaps.len()
                ));
            }
            let sum_j: f64 = snaps
                .values()
                .map(|(_, s)| {
                    let (w0, w1) = windows
                        .get(&s.epoch)
                        .copied()
                        .unwrap_or((s.minute, s.minute));
                    s.total_w() * (w1 - w0) * 60.0 + s.boot_energy_j
                })
                .sum();
            if !within(sum_j, de_energy_j, rel_tol) {
                r.violations.push(format!(
                    "{tag}: snapshots integrate to {sum_j:.6} J, \
                     DayEnergy claims {de_energy_j:.6} J"
                ));
            }
            if !within(snap_boot_j, de_boot_j, rel_tol) {
                r.violations.push(format!(
                    "{tag}: snapshot boot total {snap_boot_j:.4} J ≠ \
                     DayEnergy boot {de_boot_j:.4} J"
                ));
            }
        }
        None => r.violations.push(format!("{tag}: no DayEnergy roll-up")),
    }

    // --- Deferral conservation (check 7): the day's queue ledger must
    // close — enqueued == drained + dropped, exactly, because the
    // controller flushes leftovers as dropped at the day boundary. ---
    let (mut def_in, mut def_out, mut def_events) = (0.0f64, 0.0f64, 0usize);
    for e in group {
        match &e.event {
            Event::DeferralEnqueued { mbps_min, .. } => {
                def_in += mbps_min;
                def_events += 1;
            }
            Event::DeferralDrained {
                drained_mbps_min,
                dropped_mbps_min,
                ..
            } => {
                def_out += drained_mbps_min + dropped_mbps_min;
                def_events += 1;
            }
            _ => {}
        }
    }
    if def_events > 0 {
        r.deferred_mbps_min += def_in;
        if !within(def_in, def_out, rel_tol) {
            r.violations.push(format!(
                "{tag}: deferral books don't close: {def_in:.6} mbps-min \
                 enqueued ≠ {def_out:.6} drained+dropped"
            ));
        }
    }

    // --- Hysteresis holds: tallied here, and consumed below to relax
    // the winner check on epochs where the online controller overrode
    // the optimizer's committed winner. ---
    r.holds += group
        .iter()
        .filter(|e| matches!(&e.event, Event::HysteresisHold { .. }))
        .count();

    // --- Winner uniqueness per serial epoch window. ---
    let epoch_starts: BTreeMap<u64, usize> = group
        .iter()
        .enumerate()
        .filter_map(|(pos, e)| match &e.event {
            Event::EpochStart { epoch, .. } => Some((*epoch, pos)),
            _ => None,
        })
        .collect();
    let serial = snaps.iter().all(|(&epoch, &(snap_pos, _))| {
        let Some(&start_pos) = epoch_starts.get(&epoch) else {
            return false;
        };
        // A foreign EpochStart inside this epoch's window means the day
        // fanned epochs out in parallel and windows interleave.
        epoch_starts
            .iter()
            .all(|(&o, &p)| o == epoch || p < start_pos || p > snap_pos)
    });
    if !serial {
        r.notes.push(format!(
            "{tag}: epochs interleaved (parallel day); winner-per-window check skipped"
        ));
        return;
    }
    for (&epoch, &(snap_pos, ref snap)) in &snaps {
        let Some(&start_pos) = epoch_starts.get(&epoch) else {
            r.violations
                .push(format!("{tag}: epoch {epoch} has no EpochStart"));
            continue;
        };
        let window = &group[start_pos..=snap_pos];
        let searches = window
            .iter()
            .filter(
                |e| matches!(&e.event, Event::SpanStart { name, .. } if name == "optimizer.search"),
            )
            .count();
        let choices: Vec<&str> = window
            .iter()
            .filter_map(|e| match &e.event {
                Event::OptimizerChoice { k, .. } => Some(k.as_str()),
                _ => None,
            })
            .collect();
        if searches == 0 {
            continue; // non-optimizing strategy: nothing to commit
        }
        if choices.is_empty() {
            r.violations.push(format!(
                "{tag}: epoch {epoch} ran {searches} search(es) but committed no winner"
            ));
            continue;
        }
        if choices.len() > searches {
            r.violations.push(format!(
                "{tag}: epoch {epoch} committed {} winner(s) from {searches} search(es)",
                choices.len()
            ));
        }
        let last = choices[choices.len() - 1];
        if last != snap.choice {
            // An online hysteresis hold legitimately overrides the
            // optimizer's committed winner: accept the mismatch iff a
            // HysteresisHold inside this epoch's window held exactly the
            // snapshot's configuration against exactly that winner.
            let overridden = window.iter().any(|e| {
                matches!(
                    &e.event,
                    Event::HysteresisHold { desired, held, .. }
                        if desired == last && held == &snap.choice
                )
            });
            if !overridden {
                r.violations.push(format!(
                    "{tag}: epoch {epoch} snapshot carries '{}' but the last \
                     committed winner was '{last}'",
                    snap.choice
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eprons_obs::Journal;

    /// A hand-built, conservation-clean two-epoch day journal.
    fn clean_day() -> Vec<JournalEntry> {
        let j = Journal::with_capacity(256);
        j.record(Event::DayStart {
            strategy: "eprons".into(),
            epochs: 2,
        });
        // Epoch 0: clean, one segment.
        j.record(Event::EpochStart {
            epoch: 0,
            minute: 5.0,
            search_load: 0.5,
            background_util: 0.2,
        });
        j.record(Event::SpanStart {
            id: 1,
            parent: 0,
            thread: 0,
            name: "optimizer.search".into(),
            start_s: 0.0,
        });
        j.record(Event::OptimizerChoice {
            k: "agg2".into(),
            total_w: 150.0,
            p95_us: 20_000.0,
            feasible: true,
            evaluated: 3,
        });
        j.record(Event::SpanEnd {
            id: 1,
            name: "optimizer.search".into(),
            elapsed_s: 0.01,
            detail: String::new(),
        });
        j.record(Event::PowerSegment {
            epoch: 0,
            from_min: 0.0,
            to_min: 10.0,
            server_w: 100.0,
            network_w: 50.0,
        });
        j.record(Event::EpochSnapshot(Snapshot {
            epoch: 0,
            minute: 5.0,
            strategy: "eprons".into(),
            choice: "agg2".into(),
            server_w: 100.0,
            network_w: 50.0,
            active_switches: 12,
            e2e_p95_us: 20_000.0,
            feasible: true,
            boot_energy_j: 0.0,
        }));
        // Epoch 1: a mid-epoch repair splits the window at minute 12.
        j.record(Event::EpochStart {
            epoch: 1,
            minute: 15.0,
            search_load: 0.6,
            background_util: 0.2,
        });
        j.record(Event::SpanStart {
            id: 2,
            parent: 0,
            thread: 0,
            name: "optimizer.search".into(),
            start_s: 0.02,
        });
        j.record(Event::OptimizerChoice {
            k: "agg1".into(),
            total_w: 166.0,
            p95_us: 21_000.0,
            feasible: true,
            evaluated: 3,
        });
        j.record(Event::SpanEnd {
            id: 2,
            name: "optimizer.search".into(),
            elapsed_s: 0.01,
            detail: String::new(),
        });
        j.record(Event::RepairOutcome {
            switch: 17,
            minute: 12.0,
            outcome: "repaired".into(),
            rerouted: 2,
            woken: 1,
            boot_energy_j: 100.0,
        });
        j.record(Event::PowerSegment {
            epoch: 1,
            from_min: 10.0,
            to_min: 12.0,
            server_w: 100.0,
            network_w: 50.0,
        });
        j.record(Event::PowerSegment {
            epoch: 1,
            from_min: 12.0,
            to_min: 20.0,
            server_w: 110.0,
            network_w: 60.0,
        });
        // Time-weighted: server (100·2 + 110·8)/10 = 108, net 58.
        j.record(Event::EpochSnapshot(Snapshot {
            epoch: 1,
            minute: 15.0,
            strategy: "eprons".into(),
            choice: "agg1".into(),
            server_w: 108.0,
            network_w: 58.0,
            active_switches: 13,
            e2e_p95_us: 21_000.0,
            feasible: true,
            boot_energy_j: 100.0,
        }));
        // 150·600 + 166·600 + 100 boot = 189_700 J.
        j.record(Event::DayEnergy {
            strategy: "eprons".into(),
            epochs: 2,
            energy_j: 150.0 * 600.0 + 166.0 * 600.0 + 100.0,
            boot_energy_j: 100.0,
        });
        j.snapshot()
    }

    #[test]
    fn audit_passes_on_conserving_journal() {
        let r = audit(&clean_day(), 1.0e-9);
        assert!(r.is_clean(), "unexpected violations: {:?}", r.violations);
        assert_eq!((r.days, r.epochs, r.segments), (1, 2, 3));
        assert!(r.render().contains("OK"));
    }

    #[test]
    fn audit_flags_tampered_power_and_boot() {
        let mut entries = clean_day();
        for e in &mut entries {
            if let Event::EpochSnapshot(s) = &mut e.event {
                if s.epoch == 1 {
                    s.server_w += 1.0; // breaks segment integration + day sum
                    s.boot_energy_j = 0.0; // breaks repair reconciliation
                }
            }
        }
        let r = audit(&entries, 1.0e-9);
        assert!(r.violations.iter().any(|v| v.contains("segment energy")));
        assert!(r
            .violations
            .iter()
            .any(|v| v.contains("RepairOutcome boot")));
        assert!(r.violations.iter().any(|v| v.contains("DayEnergy")));
    }

    #[test]
    fn audit_flags_missing_winner_and_double_commit() {
        let mut entries = clean_day();
        // Remove epoch 0's OptimizerChoice: a search with no winner.
        entries.retain(|e| !matches!(&e.event, Event::OptimizerChoice { k, .. } if k == "agg2"));
        let r = audit(&entries, 1.0e-9);
        assert!(
            r.violations.iter().any(|v| v.contains("no winner")),
            "got: {:?}",
            r.violations
        );
    }

    /// `clean_day` with epoch 1 held by hysteresis: the snapshot keeps
    /// epoch 0's configuration while the optimizer committed `agg1`.
    fn held_day(held: &str) -> Vec<JournalEntry> {
        let mut entries = clean_day();
        let snap_pos = entries
            .iter()
            .position(|e| matches!(&e.event, Event::EpochSnapshot(s) if s.epoch == 1))
            .expect("epoch 1 snapshot");
        entries.insert(
            snap_pos,
            JournalEntry {
                seq: 900,
                event: Event::HysteresisHold {
                    epoch: 1,
                    desired: "agg1".into(),
                    held: held.to_string(),
                    saving_w: 2.0,
                    transition_j: 400.0,
                    reason: "payback".into(),
                },
            },
        );
        for e in &mut entries {
            if let Event::EpochSnapshot(s) = &mut e.event {
                if s.epoch == 1 {
                    s.choice = held.to_string();
                }
            }
        }
        entries
    }

    #[test]
    fn audit_accepts_hysteresis_override_of_the_committed_winner() {
        let r = audit(&held_day("agg2"), 1.0e-9);
        assert!(r.is_clean(), "unexpected violations: {:?}", r.violations);
        assert_eq!(r.holds, 1);
        assert!(r.render().contains("hysteresis hold"));
    }

    #[test]
    fn audit_still_flags_a_snapshot_the_hold_does_not_explain() {
        // The hold says the controller kept "agg4"; the snapshot carries
        // "agg8". Neither matches the committed winner, so this is a
        // genuine winner/snapshot divergence, not a hysteresis override.
        let mut entries = held_day("agg4");
        for e in &mut entries {
            if let Event::EpochSnapshot(s) = &mut e.event {
                if s.epoch == 1 {
                    s.choice = "agg8".into();
                }
            }
        }
        let r = audit(&entries, 1.0e-9);
        assert!(
            r.violations.iter().any(|v| v.contains("committed winner")),
            "got: {:?}",
            r.violations
        );
    }

    #[test]
    fn audit_closes_and_flags_the_deferral_books() {
        // Balanced ledger: 500 enqueued, 300 drained + 200 dropped.
        let mut entries = clean_day();
        entries.push(JournalEntry {
            seq: 901,
            event: Event::DeferralEnqueued {
                epoch: 0,
                mbps_min: 500.0,
                queue_mbps_min: 500.0,
                slack_epochs: 12,
            },
        });
        entries.push(JournalEntry {
            seq: 902,
            event: Event::DeferralDrained {
                epoch: 1,
                drained_mbps_min: 300.0,
                dropped_mbps_min: 200.0,
                queue_mbps_min: 0.0,
            },
        });
        let r = audit(&entries, 1.0e-9);
        assert!(r.is_clean(), "unexpected violations: {:?}", r.violations);
        assert_eq!(r.deferred_mbps_min, 500.0);

        // Losing the drain event leaves 500 mbps-min unaccounted.
        entries.pop();
        let r = audit(&entries, 1.0e-9);
        assert!(
            r.violations
                .iter()
                .any(|v| v.contains("deferral books don't close")),
            "got: {:?}",
            r.violations
        );
    }

    #[test]
    fn diff_empty_on_identical_and_catches_payload_changes() {
        let a = clean_day();
        let b = clean_day();
        assert!(diff(&a, &b, &DiffOptions::default()).is_empty());

        let mut c = clean_day();
        for e in &mut c {
            if let Event::EpochSnapshot(s) = &mut e.event {
                if s.epoch == 0 {
                    s.server_w += 1.0e-7;
                }
            }
        }
        let exact = diff(&a, &c, &DiffOptions::default());
        assert!(!exact.is_empty(), "bit-level change must show at tol 0");
        let loose = diff(
            &a,
            &c,
            &DiffOptions {
                rel_tol: 1.0e-6,
                time_tol: None,
            },
        );
        assert!(loose.is_empty(), "tolerance should forgive 1e-7: {loose:?}");
    }

    #[test]
    fn diff_ignores_span_ids_and_timings() {
        let a = clean_day();
        let mut b = clean_day();
        for e in &mut b {
            match &mut e.event {
                Event::SpanStart { id, start_s, .. } => {
                    *id += 1000;
                    *start_s += 5.0;
                }
                Event::SpanEnd { id, elapsed_s, .. } => {
                    *id += 1000;
                    *elapsed_s *= 3.0;
                }
                _ => {}
            }
        }
        assert!(diff(&a, &b, &DiffOptions::default()).is_empty());
        // ... unless timings are explicitly gated.
        let timed = diff(
            &a,
            &b,
            &DiffOptions {
                rel_tol: 0.0,
                time_tol: Some(0.5),
            },
        );
        assert!(timed.iter().any(|d| d.contains("span time")), "{timed:?}");
    }

    /// day(10 s) → epoch(10 s) → scenario.build leaf (9.8 s).
    fn spans_only() -> Vec<JournalEntry> {
        let j = Journal::with_capacity(64);
        let start = |id, parent, name: &str, at| Event::SpanStart {
            id,
            parent,
            thread: 0,
            name: name.into(),
            start_s: at,
        };
        let end = |id, name: &str, elapsed| Event::SpanEnd {
            id,
            name: name.into(),
            elapsed_s: elapsed,
            detail: String::new(),
        };
        j.record(start(101, 0, "day", 0.0));
        j.record(start(102, 101, "epoch", 0.0));
        j.record(start(103, 102, "scenario.build", 0.1));
        j.record(end(103, "scenario.build", 9.8));
        j.record(end(102, "epoch", 10.0));
        j.record(end(101, "day", 10.0));
        j.snapshot()
    }

    #[test]
    fn flame_collapses_self_time_per_stack() {
        let out = flame(&spans_only());
        assert!(out.contains("day;epoch;scenario.build 9800000\n"), "{out}");
        // epoch self = 10 − 9.8 = 0.2 s.
        assert!(out.contains("day;epoch 200000\n"), "{out}");
        // day self = 0 → no line.
        assert!(!out.lines().any(|l| l.starts_with("day ")), "{out}");
    }

    #[test]
    fn leaf_coverage_is_union_over_day_window() {
        let cov = flame_leaf_coverage(&spans_only()).expect("day span present");
        assert!((cov - 0.98).abs() < 1.0e-9, "got {cov}");
    }

    #[test]
    fn forest_reports_structural_damage() {
        let j = Journal::with_capacity(16);
        j.record(Event::SpanEnd {
            id: 9,
            name: "ghost".into(),
            elapsed_s: 1.0,
            detail: String::new(),
        });
        j.record(Event::SpanStart {
            id: 10,
            parent: 999,
            thread: 0,
            name: "orphan".into(),
            start_s: 0.0,
        });
        let f = span_forest(&j.snapshot());
        assert!(f.errors.iter().any(|e| e.contains("without a SpanStart")));
        assert!(f.errors.iter().any(|e| e.contains("unknown parent")));
        assert!(f.errors.iter().any(|e| e.contains("never ended")));
        // Structural damage surfaces as audit violations too.
        assert!(!audit(&j.snapshot(), 1.0e-9).is_clean());
    }

    #[test]
    fn summarize_renders_all_sections() {
        let mut entries = clean_day();
        entries.extend(spans_only());
        let s = summarize(&entries);
        assert!(s.contains("journal events"), "{s}");
        assert!(s.contains("span wall-time by stage"), "{s}");
        assert!(s.contains("epoch snapshots"), "{s}");
        assert!(s.contains("day energy (eprons)"), "{s}");
        assert!(s.contains("flame attribution"), "{s}");
        // No PodConsolidation events → no pods table.
        assert!(!s.contains("net.pods"), "{s}");
    }

    /// One clean pod-decomposed pass over a 2-pod tree: pod 0 solved
    /// fresh then re-solved once under push-back, pod 1 a cache hit.
    fn pod_pass() -> Vec<JournalEntry> {
        let j = Journal::with_capacity(64);
        let start = |id, parent, name: &str| Event::SpanStart {
            id,
            parent,
            thread: 0,
            name: name.into(),
            start_s: 0.0,
        };
        let end = |id, name: &str, detail: &str| Event::SpanEnd {
            id,
            name: name.into(),
            elapsed_s: 0.01,
            detail: detail.into(),
        };
        j.record(start(301, 0, "net.consolidate"));
        j.record(start(302, 301, "pod.consolidate"));
        j.record(end(302, "pod.consolidate", "pod=0 of=2 cached=false"));
        j.record(start(303, 301, "pod.consolidate"));
        j.record(end(303, "pod.consolidate", "pod=1 of=2 cached=true"));
        j.record(start(304, 301, "pod.consolidate"));
        j.record(end(
            304,
            "pod.consolidate",
            "pod=0 of=2 cached=false resolve=true",
        ));
        j.record(end(
            301,
            "net.consolidate",
            "algo=pod_decomposed flows=64 pods=2",
        ));
        j.record(Event::PodConsolidation {
            pods: 2,
            solved: 1,
            cached: 1,
            resolves: 1,
            rounds: 2,
            balanced: 1,
            fallback: false,
        });
        j.snapshot()
    }

    #[test]
    fn summarize_tabulates_pod_counters() {
        let s = summarize(&pod_pass());
        assert!(s.contains("pod consolidation (net.pods.*)"), "{s}");
        assert!(s.contains("net.pods.cache_hits"), "{s}");
        assert!(s.contains("net.pods.balanced_stitches"), "{s}");
    }

    #[test]
    fn audit_accepts_covering_pod_pass() {
        let r = audit(&pod_pass(), 1.0e-9);
        let pod_violations: Vec<_> = r.violations.iter().filter(|v| v.contains("pod")).collect();
        assert!(pod_violations.is_empty(), "{pod_violations:?}");
        assert_eq!(r.pod_passes, 1);
        assert!(r.render().contains("1 pod-decomposed"));
    }

    #[test]
    fn audit_flags_missing_pod_coverage() {
        // Drop pod 1's round-0 span (start and end): coverage breaks and
        // the span-level cache tally no longer matches the event.
        let entries: Vec<JournalEntry> = pod_pass()
            .into_iter()
            .filter(|e| {
                !matches!(
                    &e.event,
                    Event::SpanStart { id: 303, .. } | Event::SpanEnd { id: 303, .. }
                )
            })
            .collect();
        let r = audit(&entries, 1.0e-9);
        assert!(
            r.violations
                .iter()
                .any(|v| v.contains("pod 1 has 0 round-0")),
            "{:?}",
            r.violations
        );
        assert!(
            r.violations.iter().any(|v| v.contains("pod cache hits")),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn audit_flags_pod_round0_deficit() {
        // An event claiming 1 solved + 0 cached on 2 pods leaks a pod.
        let mut entries = pod_pass();
        for e in &mut entries {
            if let Event::PodConsolidation { cached, .. } = &mut e.event {
                *cached = 0;
            }
        }
        let r = audit(&entries, 1.0e-9);
        assert!(
            r.violations.iter().any(|v| v.contains("round 0 solved")),
            "{:?}",
            r.violations
        );
    }
}
