//! Consolidation scalability: exact MILP vs. the greedy heuristic.
//!
//! Paper anchor (§IV-B): "the computation time of the linear programming
//! model can be more than 42 min on our platform, with 3000 flows in a
//! 4-ary Fat-tree topology. In real deployment, we design the heuristic
//! algorithm … to accelerate the latency-aware traffic consolidation."
//! This bench shows the same scaling gap in miniature: MILP solve time
//! explodes with the flow count while greedy stays near-linear.

use eprons_bench::harness::Runner;
use eprons_net::consolidate::path::build_path_model;
use eprons_net::flow::FlowSet;
use eprons_net::{
    ConsolidationConfig, Consolidator, FlowClass, GreedyConsolidator, PathMilpConsolidator,
};
use eprons_sim::SimRng;
use eprons_topo::FatTree;
use std::hint::black_box;

fn random_flows(ft: &FatTree, n: usize, seed: u64) -> FlowSet {
    let hosts = ft.hosts().to_vec();
    let mut rng = SimRng::seed_from_u64(seed);
    let mut fs = FlowSet::new();
    for _ in 0..n {
        let a = rng.index(hosts.len());
        let mut b = rng.index(hosts.len());
        while b == a {
            b = rng.index(hosts.len());
        }
        let sensitive = rng.bernoulli(0.7);
        let demand = if sensitive {
            rng.uniform_range(5.0, 30.0)
        } else {
            rng.uniform_range(50.0, 250.0)
        };
        fs.add(
            hosts[a],
            hosts[b],
            demand,
            if sensitive {
                FlowClass::LatencySensitive
            } else {
                FlowClass::LatencyTolerant
            },
        );
    }
    fs
}

fn main() {
    let ft = FatTree::new(4, 1000.0);
    let cfg = ConsolidationConfig::with_k(2.0);
    let mut r = Runner::from_env();
    for n in [10usize, 50, 200, 1000] {
        let flows = random_flows(&ft, n, 7);
        r.bench(&format!("greedy/flows/{n}"), || {
            GreedyConsolidator.consolidate(black_box(&ft), black_box(&flows), &cfg)
        });
    }
    for n in [3usize, 6, 10] {
        let flows = random_flows(&ft, n, 7);
        let milp = PathMilpConsolidator::default();
        r.bench(&format!("path_milp/solve/{n}"), || {
            milp.consolidate(black_box(&ft), black_box(&flows), &cfg)
        });
        r.bench(&format!("path_milp/build_model/{n}"), || {
            build_path_model(black_box(&ft), black_box(&flows), &cfg)
        });
    }
}
