//! LP/MILP solver benchmarks: dense simplex scaling and branch-and-bound
//! on knapsack-style binary programs.

use eprons_bench::harness::Runner;
use eprons_lp::standard::solve_lp;
use eprons_lp::{solve_milp, Cmp, MilpOptions, Model, Sense};
use std::hint::black_box;

/// A dense feasible LP: min Σcᵢxᵢ s.t. random ≥ rows, box bounds.
fn random_lp(nvars: usize, nrows: usize, seed: u64) -> Model {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut m = Model::new(Sense::Minimize);
    let vars: Vec<_> = (0..nvars)
        .map(|i| m.add_var(format!("x{i}"), 0.0, 10.0, 0.1 + next()))
        .collect();
    for r in 0..nrows {
        let terms: Vec<_> = vars.iter().map(|&v| (v, next() * 2.0)).collect();
        m.add_constraint(format!("r{r}"), terms, Cmp::Ge, 1.0 + next() * 3.0);
    }
    m
}

/// A binary knapsack with `n` items.
fn knapsack(n: usize) -> Model {
    let mut m = Model::new(Sense::Maximize);
    let vars: Vec<_> = (0..n)
        .map(|i| m.add_binary(format!("x{i}"), ((i * 7) % 13 + 1) as f64))
        .collect();
    let terms: Vec<_> = vars
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, ((i * 5) % 9 + 1) as f64))
        .collect();
    m.add_constraint("cap", terms, Cmp::Le, (2 * n) as f64);
    m
}

fn main() {
    let mut r = Runner::from_env();
    for (nvars, nrows) in [(10, 8), (30, 20), (80, 60), (150, 100)] {
        let m = random_lp(nvars, nrows, 42);
        r.bench(&format!("simplex/lp/{nvars}x{nrows}"), || {
            solve_lp(black_box(&m)).unwrap()
        });
    }
    for n in [8usize, 16, 24] {
        let m = knapsack(n);
        r.bench(&format!("milp/knapsack/{n}"), || {
            solve_milp(black_box(&m), &MilpOptions::default()).unwrap()
        });
    }
}
