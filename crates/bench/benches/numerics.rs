//! Numerics micro-benchmarks.
//!
//! Paper anchor (§III-C): "With the use of Fast Fourier Transform (FFT),
//! computing one convolution requires 20 µs on our machine." The
//! `convolution/...` group measures our equivalent, including the
//! direct-vs-FFT crossover that motivates `conv::FFT_THRESHOLD`.

use eprons_bench::harness::Runner;
use eprons_num::complex::Complex;
use eprons_num::conv::{convolve_direct, convolve_fft};
use eprons_num::fft::{fft_in_place, FftPlan};
use std::hint::black_box;

fn deterministic_masses(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i as f64 * 0.37).sin().abs() + 0.01) / n as f64)
        .collect()
}

fn main() {
    let mut r = Runner::from_env();
    for log2n in [8usize, 10, 12] {
        let n = 1 << log2n;
        let data: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).sin(), (i as f64).cos()))
            .collect();
        r.bench(&format!("fft/in_place/{n}"), || {
            let mut d = data.clone();
            fft_in_place(black_box(&mut d));
            d
        });
        let plan = FftPlan::new(n);
        r.bench(&format!("fft/planned/{n}"), || {
            let mut d = data.clone();
            plan.forward(black_box(&mut d));
            d
        });
    }
    // The paper's work PMFs are 160-bin; equivalent requests grow with
    // queue depth.
    for n in [32usize, 64, 160, 320, 640] {
        let a = deterministic_masses(n);
        let b = deterministic_masses(n);
        r.bench(&format!("convolution/direct/{n}"), || {
            convolve_direct(black_box(&a), black_box(&b))
        });
        r.bench(&format!("convolution/fft/{n}"), || {
            convolve_fft(black_box(&a), black_box(&b))
        });
    }
}
