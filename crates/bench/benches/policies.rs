//! Policy ablation bench: per-request DVFS cost of each scheme on the
//! same arrival trace (the simulator-throughput view of Fig. 12's lines).

use eprons_bench::harness::Runner;
use eprons_server::policy::DvfsPolicy;
use eprons_server::{
    coresim::poisson_trace, simulate_core, ArrivalSpec, AvgVpPolicy, CoreSimConfig, MaxFreqPolicy,
    MaxVpPolicy, ServiceModel, TimeTraderPolicy, VpEngine,
};
use eprons_sim::SimRng;
use std::hint::black_box;

fn fixture() -> (ServiceModel, Vec<ArrivalSpec>) {
    let mut rng = SimRng::seed_from_u64(5);
    let service = ServiceModel::synthetic_xapian(&mut rng, 20_000, 160);
    let mean = service.mean_service_time(2.7);
    let mut trng = SimRng::seed_from_u64(6);
    let arrivals = poisson_trace(&mut trng, 0.3 / mean, 10.0, 25.0e-3);
    (service, arrivals)
}

fn main() {
    let (service, arrivals) = fixture();
    let cfg = CoreSimConfig::default();
    let mut r = Runner::from_env();
    type PolicyFactory = fn(usize, f64) -> Box<dyn DvfsPolicy>;
    let policies: Vec<(&str, PolicyFactory)> = vec![
        ("no_pm", |_, _| Box::new(MaxFreqPolicy)),
        ("rubik", |_, _| Box::new(MaxVpPolicy::rubik())),
        ("timetrader", |n, t| Box::new(TimeTraderPolicy::new(t, n))),
        ("eprons", |_, _| Box::new(AvgVpPolicy::eprons())),
    ];
    for (name, make) in policies {
        r.bench(&format!("core_simulation/10s_trace/{name}"), || {
            let mut policy = make(cfg.ladder.len(), 30.0e-3);
            let mut engine = VpEngine::new(service.clone());
            simulate_core(policy.as_mut(), &mut engine, black_box(&arrivals), &cfg, 11)
        });
    }
}
