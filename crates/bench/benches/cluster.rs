//! Whole-cluster epoch benchmark: one controller optimization period end
//! to end (consolidate → sample network → simulate 16 ISNs → account).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eprons_core::{run_cluster, ClusterConfig, ClusterRun, ConsolidationSpec, ServerScheme};
use eprons_topo::AggregationLevel;
use std::hint::black_box;

fn bench_epoch(c: &mut Criterion) {
    let cfg = ClusterConfig::default();
    let mut g = c.benchmark_group("cluster_epoch");
    g.sample_size(10);
    for (name, spec) in [
        ("all_on", ConsolidationSpec::AllOn),
        ("agg3", ConsolidationSpec::Level(AggregationLevel::Agg3)),
        ("greedy_k2", ConsolidationSpec::GreedyK(2.0)),
    ] {
        let run = ClusterRun {
            scheme: ServerScheme::EpronsServer,
            consolidation: spec,
            server_utilization: 0.3,
            background_util: 0.2,
            duration_s: 3.0,
            warmup_s: 0.0,
            seed: 99,
        };
        g.bench_with_input(BenchmarkId::new("eprons_3s", name), &run, |b, run| {
            b.iter(|| run_cluster(black_box(&cfg), black_box(run)).unwrap())
        });
    }
    // The model-free baseline for comparison (no convolutions at all).
    let run = ClusterRun {
        scheme: ServerScheme::NoPowerManagement,
        consolidation: ConsolidationSpec::AllOn,
        server_utilization: 0.3,
        background_util: 0.2,
        duration_s: 3.0,
        warmup_s: 0.0,
        seed: 99,
    };
    g.bench_with_input(BenchmarkId::new("no_pm_3s", "all_on"), &run, |b, run| {
        b.iter(|| run_cluster(black_box(&cfg), black_box(run)).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_epoch);
criterion_main!(benches);
