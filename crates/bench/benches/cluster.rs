//! Whole-cluster epoch benchmark: one controller optimization period end
//! to end (consolidate → sample network → simulate 16 ISNs → account).

use eprons_bench::harness::Runner;
use eprons_core::{run_cluster, ClusterConfig, ClusterRun, ConsolidationSpec, ServerScheme};
use eprons_topo::AggregationLevel;
use std::hint::black_box;

fn main() {
    let cfg = ClusterConfig::default();
    let mut r = Runner::from_env();
    for (name, spec) in [
        ("all_on", ConsolidationSpec::AllOn),
        ("agg3", ConsolidationSpec::Level(AggregationLevel::Agg3)),
        ("greedy_k2", ConsolidationSpec::GreedyK(2.0)),
    ] {
        let run = ClusterRun {
            scheme: ServerScheme::EpronsServer,
            consolidation: spec,
            server_utilization: 0.3,
            background_util: 0.2,
            duration_s: 3.0,
            warmup_s: 0.0,
            seed: 99,
        };
        r.bench(&format!("cluster_epoch/eprons_3s/{name}"), || {
            run_cluster(black_box(&cfg), black_box(&run)).unwrap()
        });
    }
    // The model-free baseline for comparison (no convolutions at all).
    let run = ClusterRun {
        scheme: ServerScheme::NoPowerManagement,
        consolidation: ConsolidationSpec::AllOn,
        server_utilization: 0.3,
        background_util: 0.2,
        duration_s: 3.0,
        warmup_s: 0.0,
        seed: 99,
    };
    r.bench("cluster_epoch/no_pm_3s/all_on", || {
        run_cluster(black_box(&cfg), black_box(&run)).unwrap()
    });
}
