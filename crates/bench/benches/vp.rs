//! Violation-probability engine benchmarks.
//!
//! Paper anchors (§III-C): equivalent distributions are cached at
//! departure instants; arrival instants pay n fresh convolutions; "the
//! time it takes to determine the operating frequency is shortened by
//! applying binary search on the average VP … it takes less than 30 µs".

use eprons_bench::harness::Runner;
use eprons_server::policy::DvfsPolicy;
use eprons_server::vp::InflightHead;
use eprons_server::{AvgVpPolicy, FreqLadder, ServiceModel, VpEngine};
use eprons_sim::SimRng;
use std::hint::black_box;

fn service() -> ServiceModel {
    let mut rng = SimRng::seed_from_u64(3);
    ServiceModel::synthetic_xapian(&mut rng, 20_000, 160)
}

fn main() {
    let mut r = Runner::from_env();
    for depth in [1usize, 2, 4, 8] {
        let mut engine = VpEngine::new(service());
        // Warm the cache like a running server would.
        let _ = engine.equivalent(depth);
        let deadlines: Vec<f64> = (0..depth).map(|i| 10.0e-3 + 3.0e-3 * i as f64).collect();
        r.bench(&format!("decision_departure/queue/{depth}"), || {
            engine.decision(black_box(0.0), None, black_box(&deadlines))
        });
    }
    // Arrival instants condition the in-flight head and convolve fresh —
    // the expensive path the paper describes.
    for depth in [1usize, 2, 4, 8] {
        let mut engine = VpEngine::new(service());
        let _ = engine.equivalent(depth);
        let head = InflightHead {
            done_work_gc: engine.service().work_pmf().mean() / 2.0,
            rem_fixed_s: 0.0,
        };
        let deadlines: Vec<f64> = (0..=depth).map(|i| 10.0e-3 + 3.0e-3 * i as f64).collect();
        r.bench(&format!("decision_arrival/queue/{depth}"), || {
            engine.decision(black_box(0.0), Some(head), black_box(&deadlines))
        });
    }
    // The paper's "<30 µs" step: binary search over the ladder given a
    // prepared decision.
    let mut engine = VpEngine::new(service());
    let deadlines = [9.0e-3, 12.0e-3, 15.0e-3, 20.0e-3];
    let decision = engine.decision(0.0, None, &deadlines);
    let ladder = FreqLadder::paper_default();
    let mut policy = AvgVpPolicy::eprons();
    r.bench("frequency_selection/avg_vp_binary_search", || {
        policy.choose_frequency(0.0, black_box(&decision), &ladder)
    });
}
