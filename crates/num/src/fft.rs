//! Iterative radix-2 Cooley–Tukey FFT.
//!
//! The EPRONS-Server violation-probability engine convolves per-request
//! work distributions (§III-B of the paper); the paper notes that one
//! FFT-based convolution costs ≈20 µs on their machine (§III-C). This module
//! supplies that FFT, written from scratch: in-place, power-of-two length,
//! with precomputed twiddle tables available through [`FftPlan`] for the hot
//! path.

use crate::complex::Complex;

/// Returns the smallest power of two `>= n` (and `>= 1`).
#[inline]
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// Bit-reversal permutation applied in place. `data.len()` must be a power
/// of two.
fn bit_reverse_permute(data: &mut [Complex]) {
    let n = data.len();
    let shift = n.leading_zeros() + 1;
    for i in 0..n {
        let j = i.reverse_bits() >> shift;
        if j > i {
            data.swap(i, j);
        }
    }
}

/// In-place forward FFT. `data.len()` must be a power of two.
///
/// Computes `X[k] = Σ_j x[j] e^{-2πi jk/N}` (the engineering sign
/// convention).
///
/// # Panics
/// Panics if the length is not a power of two.
pub fn fft_in_place(data: &mut [Complex]) {
    fft_dir(data, false);
}

/// In-place inverse FFT including the `1/N` normalization, so that
/// `ifft(fft(x)) == x`.
///
/// # Panics
/// Panics if the length is not a power of two.
pub fn ifft_in_place(data: &mut [Complex]) {
    fft_dir(data, true);
    let n = data.len() as f64;
    for z in data.iter_mut() {
        *z = z.scale(1.0 / n);
    }
}

fn fft_dir(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    bit_reverse_permute(data);
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex::ONE;
            let half = len / 2;
            for k in 0..half {
                let u = data[start + k];
                let v = data[start + k + half] * w;
                data[start + k] = u + v;
                data[start + k + half] = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }
}

/// A reusable FFT plan for a fixed power-of-two size.
///
/// Precomputes the twiddle factors for every butterfly stage so repeated
/// transforms of the same size (the common case when convolving many work
/// PMFs binned on the same grid) avoid recomputing sines and cosines.
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    /// Twiddles for the forward transform, concatenated per stage:
    /// stage with half-length `h` contributes `h` entries.
    twiddles: Vec<Complex>,
}

impl FftPlan {
    /// Builds a plan for transforms of length `n` (must be a power of two).
    ///
    /// # Panics
    /// Panics if `n` is not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two(), "FFT length must be a power of two");
        let mut twiddles = Vec::new();
        let mut len = 2;
        while len <= n {
            let ang = -2.0 * std::f64::consts::PI / len as f64;
            for k in 0..len / 2 {
                twiddles.push(Complex::cis(ang * k as f64));
            }
            len <<= 1;
        }
        FftPlan { n, twiddles }
    }

    /// The transform length this plan was built for.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` iff the plan length is zero (never; kept for clippy's
    /// `len_without_is_empty`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Forward transform using the precomputed twiddles.
    ///
    /// # Panics
    /// Panics if `data.len() != self.len()`.
    pub fn forward(&self, data: &mut [Complex]) {
        self.run(data, false);
    }

    /// Inverse transform (normalized by `1/N`).
    ///
    /// # Panics
    /// Panics if `data.len() != self.len()`.
    pub fn inverse(&self, data: &mut [Complex]) {
        self.run(data, true);
        let inv = 1.0 / self.n as f64;
        for z in data.iter_mut() {
            *z = z.scale(inv);
        }
    }

    fn run(&self, data: &mut [Complex], inverse: bool) {
        assert_eq!(data.len(), self.n, "data length must match plan length");
        if self.n <= 1 {
            return;
        }
        bit_reverse_permute(data);
        let mut len = 2;
        let mut toff = 0;
        while len <= self.n {
            let half = len / 2;
            for start in (0..self.n).step_by(len) {
                for k in 0..half {
                    let tw = self.twiddles[toff + k];
                    let w = if inverse { tw.conj() } else { tw };
                    let u = data[start + k];
                    let v = data[start + k + half] * w;
                    data[start + k] = u + v;
                    data[start + k + half] = u - v;
                }
            }
            toff += half;
            len <<= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn as_complex(v: &[f64]) -> Vec<Complex> {
        v.iter().map(|&x| Complex::from_real(x)).collect()
    }

    fn max_err(a: &[Complex], b: &[Complex]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
    }

    /// Naive O(n²) DFT used as a reference.
    fn dft_naive(x: &[Complex]) -> Vec<Complex> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::ZERO;
                for (j, &xj) in x.iter().enumerate() {
                    let ang = -2.0 * std::f64::consts::PI * (j * k) as f64 / n as f64;
                    acc += xj * Complex::cis(ang);
                }
                acc
            })
            .collect()
    }

    #[test]
    fn matches_naive_dft() {
        let x = as_complex(&[1.0, 2.0, -1.0, 0.5, 3.0, -2.5, 0.0, 1.5]);
        let mut fast = x.clone();
        fft_in_place(&mut fast);
        let slow = dft_naive(&x);
        assert!(max_err(&fast, &slow) < 1e-9);
    }

    #[test]
    fn round_trip_identity() {
        for log2n in 0..=10 {
            let n = 1usize << log2n;
            let x: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.7).cos()))
                .collect();
            let mut y = x.clone();
            fft_in_place(&mut y);
            ifft_in_place(&mut y);
            assert!(max_err(&x, &y) < 1e-9, "round-trip failed at n={n}");
        }
    }

    #[test]
    fn plan_matches_free_functions() {
        let n = 256;
        let plan = FftPlan::new(n);
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.1).sin(), (i as f64 * 0.3).cos()))
            .collect();
        let mut a = x.clone();
        let mut b = x.clone();
        fft_in_place(&mut a);
        plan.forward(&mut b);
        assert!(max_err(&a, &b) < 1e-10);
        ifft_in_place(&mut a);
        plan.inverse(&mut b);
        assert!(max_err(&a, &b) < 1e-10);
        assert!(max_err(&a, &x) < 1e-9);
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let n = 64;
        let mut x = vec![Complex::ZERO; n];
        x[0] = Complex::ONE;
        fft_in_place(&mut x);
        for z in &x {
            assert!((z.re - 1.0).abs() < 1e-12 && z.im.abs() < 1e-12);
        }
    }

    #[test]
    fn parsevals_theorem_holds() {
        let x = as_complex(&[0.3, -1.2, 2.5, 0.0, 1.1, -0.4, 0.9, 2.2]);
        let time_energy: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let mut f = x.clone();
        fft_in_place(&mut f);
        let freq_energy: f64 = f.iter().map(|z| z.norm_sqr()).sum::<f64>() / x.len() as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    fn next_pow2_behaviour() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(1023), 1024);
        assert_eq!(next_pow2(1024), 1024);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_length_panics() {
        let mut x = vec![Complex::ZERO; 12];
        fft_in_place(&mut x);
    }

    #[test]
    fn linearity() {
        let n = 32;
        let a: Vec<Complex> = (0..n).map(|i| Complex::new(i as f64, 0.0)).collect();
        let b: Vec<Complex> = (0..n).map(|i| Complex::new(0.0, (i % 5) as f64)).collect();
        let sum: Vec<Complex> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fsum = sum.clone();
        fft_in_place(&mut fa);
        fft_in_place(&mut fb);
        fft_in_place(&mut fsum);
        let combined: Vec<Complex> = fa.iter().zip(&fb).map(|(x, y)| *x + *y).collect();
        assert!(max_err(&combined, &fsum) < 1e-9);
    }
}
