//! Quantile computation: exact (sort-based) and streaming (P² estimator).
//!
//! Tail latency is the paper's SLA currency (95th/99th percentile, §III).
//! Simulators collect latency samples and query [`percentile`]; the
//! TimeTrader baseline's feedback loop uses the streaming [`P2Quantile`]
//! to monitor the running tail without storing every observation.

/// Exact percentile of a sorted slice with linear interpolation between
/// order statistics ("type 7", the default in R/NumPy).
///
/// `p` is a probability in `[0, 1]` (e.g. `0.95` for the 95th percentile).
///
/// # Panics
/// Panics if the slice is empty or `p` is outside `[0, 1]`.
pub fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!(
        (0.0..=1.0).contains(&p),
        "percentile level must be in [0,1]"
    );
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Exact percentile of an unsorted slice (copies and sorts internally).
///
/// # Panics
/// Panics if the slice is empty or `p` is outside `[0, 1]`.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    let mut v = samples.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
    percentile_of_sorted(&v, p)
}

/// The P² (piecewise-parabolic) streaming quantile estimator of
/// Jain & Chlamtac (1985). Tracks a single quantile with O(1) memory.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights (estimated quantile values).
    q: [f64; 5],
    /// Marker positions (1-based observation ranks).
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Desired position increments.
    dn: [f64; 5],
    /// Number of observations so far.
    count: usize,
    /// Initial observations before the estimator activates.
    init: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for quantile `p` in `(0, 1)`.
    ///
    /// # Panics
    /// Panics if `p` is not strictly inside `(0, 1)`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "P2 quantile must be in (0,1)");
        P2Quantile {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
            init: Vec::with_capacity(5),
        }
    }

    /// Number of observations seen.
    #[inline]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Feeds one observation.
    pub fn observe(&mut self, x: f64) {
        self.count += 1;
        if self.init.len() < 5 {
            self.init.push(x);
            if self.init.len() == 5 {
                self.init
                    .sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
                for i in 0..5 {
                    self.q[i] = self.init[i];
                }
            }
            return;
        }

        // Find the cell containing x and bump marker positions.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else {
            let mut cell = 0;
            for i in 0..4 {
                if x >= self.q[i] && x < self.q[i + 1] {
                    cell = i;
                    break;
                }
            }
            cell
        };
        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        for i in 0..5 {
            self.np[i] += self.dn[i];
        }

        // Adjust interior markers with the parabolic formula, falling back
        // to linear when the parabolic step would violate ordering.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0)
            {
                let ds = d.signum();
                let qp = self.parabolic(i, ds);
                self.q[i] = if self.q[i - 1] < qp && qp < self.q[i + 1] {
                    qp
                } else {
                    self.linear(i, ds)
                };
                self.n[i] += ds;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let q = &self.q;
        let n = &self.n;
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// Current quantile estimate. Before five observations have arrived the
    /// estimate is the exact quantile of what has been seen; returns `None`
    /// if nothing has been observed.
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.init.len() < 5 {
            let mut v = self.init.clone();
            v.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            return Some(percentile_of_sorted(&v, self.p));
        }
        Some(self.q[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_percentiles_small() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 0.5), 3.0);
        assert_eq!(percentile(&v, 1.0), 5.0);
        assert_eq!(percentile(&v, 0.25), 2.0);
        // interpolation
        assert!((percentile(&v, 0.1) - 1.4).abs() < 1e-12);
    }

    #[test]
    fn exact_percentile_unsorted_input() {
        let v = [5.0, 1.0, 4.0, 2.0, 3.0];
        assert_eq!(percentile(&v, 0.5), 3.0);
    }

    #[test]
    fn single_element() {
        assert_eq!(percentile(&[7.0], 0.95), 7.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_slice_panics() {
        percentile(&[], 0.5);
    }

    #[test]
    fn extreme_levels_hit_min_and_max_exactly() {
        // p = 0.0 and p = 1.0 must return the extremes with no
        // interpolation residue or NaN, including on unsorted input and
        // on duplicated extremes.
        let v = [3.0, -2.0, 7.5, 7.5, 0.0];
        assert_eq!(percentile(&v, 0.0), -2.0);
        assert_eq!(percentile(&v, 1.0), 7.5);
        assert_eq!(percentile_of_sorted(&[1.0, 2.0], 0.0), 1.0);
        assert_eq!(percentile_of_sorted(&[1.0, 2.0], 1.0), 2.0);
        assert!(percentile(&v, 0.0).is_finite() && percentile(&v, 1.0).is_finite());
    }

    #[test]
    #[should_panic(expected = "in [0,1]")]
    fn negative_level_panics() {
        percentile(&[1.0, 2.0], -0.01);
    }

    #[test]
    #[should_panic(expected = "in [0,1]")]
    fn level_above_one_panics() {
        percentile(&[1.0, 2.0], 1.01);
    }

    #[test]
    #[should_panic(expected = "in [0,1]")]
    fn nan_level_panics() {
        // A NaN level fails the [0,1] range check rather than silently
        // producing a NaN rank.
        percentile_of_sorted(&[1.0, 2.0], f64::NAN);
    }

    #[test]
    fn p2_matches_exact_on_uniform_stream() {
        // Deterministic LCG uniform stream.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut est = P2Quantile::new(0.95);
        let mut all = Vec::new();
        for _ in 0..20_000 {
            let x = next();
            est.observe(x);
            all.push(x);
        }
        let exact = percentile(&all, 0.95);
        let approx = est.estimate().unwrap();
        assert!(
            (exact - approx).abs() < 0.02,
            "P2 estimate {approx} too far from exact {exact}"
        );
    }

    #[test]
    fn p2_small_counts_are_exact() {
        let mut est = P2Quantile::new(0.5);
        est.observe(10.0);
        assert_eq!(est.estimate(), Some(10.0));
        est.observe(20.0);
        assert_eq!(est.estimate(), Some(15.0));
    }

    #[test]
    fn p2_handles_skewed_stream() {
        // Exponential-ish data via inverse transform of the LCG stream.
        let mut state = 42u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = ((state >> 11) as f64 / (1u64 << 53) as f64).max(1e-12);
            -u.ln()
        };
        let mut est = P2Quantile::new(0.99);
        let mut all = Vec::new();
        for _ in 0..50_000 {
            let x = next();
            est.observe(x);
            all.push(x);
        }
        let exact = percentile(&all, 0.99); // ~4.6 for Exp(1)
        let approx = est.estimate().unwrap();
        assert!(
            (exact - approx).abs() / exact < 0.1,
            "P2 estimate {approx} vs exact {exact}"
        );
    }

    #[test]
    fn p2_none_before_observations() {
        let est = P2Quantile::new(0.9);
        assert!(est.estimate().is_none());
    }
}
