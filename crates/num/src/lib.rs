//! Numerics substrate for the EPRONS reproduction.
//!
//! This crate provides everything number-shaped the rest of the workspace
//! needs, built from scratch so the reproduction has no opaque numerical
//! dependencies:
//!
//! * [`complex`] — a minimal `Complex` type used by the FFT.
//! * [`fft`] — an iterative radix-2 Cooley–Tukey FFT (the paper reports
//!   ~20 µs per convolution using FFT; see `bench/benches/numerics.rs`).
//! * [`conv`] — direct and FFT-based convolution of non-negative sequences,
//!   the core operation behind *equivalent request* distributions (§III-B).
//! * [`pmf`] — gridded discrete probability mass functions: the
//!   representation of per-request **work** distributions, with CDF/CCDF
//!   queries and convolution.
//! * [`empirical`] — empirical distributions built from raw samples
//!   (service-time logs, latency logs) with quantile queries and sampling.
//! * [`quantile`] — exact quantiles and a P² streaming estimator for
//!   on-line tail-latency monitoring.
//! * [`stats`] — small descriptive-statistics helpers.
//! * [`interp`] — piecewise-linear lookup tables (utilization→latency
//!   curve, frequency→power curve).

#![warn(missing_docs)]

pub mod complex;
pub mod conv;
pub mod empirical;
pub mod fft;
pub mod interp;
pub mod pmf;
pub mod quantile;
pub mod stats;

pub use complex::Complex;
pub use empirical::Empirical;
pub use interp::LinearTable;
pub use pmf::Pmf;
pub use quantile::{percentile, percentile_of_sorted, P2Quantile};
