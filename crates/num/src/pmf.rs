//! Gridded discrete probability mass functions.
//!
//! EPRONS-Server models each request's **work** (in giga-cycles) as a PMF on
//! a uniform grid. The violation probability of a request under frequency
//! `f` and deadline `D` is the CCDF of its *equivalent* work distribution at
//! `ω(D) = f · (D − T_start)` (paper eq. 1); equivalent distributions are
//! formed by [`Pmf::convolve`].

use crate::conv;

/// Relative tolerance when checking that two PMFs share a grid step.
const STEP_TOL: f64 = 1e-9;

/// A probability mass function on the uniform grid
/// `value(i) = origin + i · step`.
///
/// ```
/// use eprons_num::Pmf;
/// // A fair die, and the sum of two dice by convolution.
/// let die = Pmf::from_masses(1.0, 1.0, vec![1.0; 6]);
/// let two = die.convolve(&die);
/// assert!((two.mean() - 7.0).abs() < 1e-12);
/// // Violation probability at a "deadline" of 10 pips:
/// assert!((two.ccdf(10.0) - 3.0 / 36.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Pmf {
    origin: f64,
    step: f64,
    mass: Vec<f64>,
}

impl Pmf {
    /// Builds a PMF from raw (non-negative) masses, normalizing them to sum
    /// to one.
    ///
    /// # Panics
    /// Panics if `step <= 0`, `mass` is empty, any mass is negative/NaN, or
    /// the total mass is zero.
    pub fn from_masses(origin: f64, step: f64, mass: Vec<f64>) -> Self {
        assert!(step > 0.0, "PMF step must be positive");
        assert!(!mass.is_empty(), "PMF must have at least one bin");
        assert!(
            mass.iter().all(|&m| m >= 0.0 && m.is_finite()),
            "PMF masses must be non-negative and finite"
        );
        let total: f64 = mass.iter().sum();
        assert!(total > 0.0, "PMF must have positive total mass");
        let mass = mass.into_iter().map(|m| m / total).collect();
        Pmf { origin, step, mass }
    }

    /// A degenerate PMF: all mass at `value` (represented on a grid of the
    /// given `step`).
    pub fn delta(value: f64, step: f64) -> Self {
        Pmf::from_masses(value, step, vec![1.0])
    }

    /// Histograms `samples` into bins of width `step` and returns the
    /// resulting PMF. Bin centers are aligned so the minimum sample falls at
    /// the center of bin 0.
    ///
    /// # Panics
    /// Panics if `samples` is empty or `step <= 0`.
    pub fn from_samples(samples: &[f64], step: f64) -> Self {
        assert!(!samples.is_empty(), "need at least one sample");
        assert!(step > 0.0, "PMF step must be positive");
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let nbins = (((max - min) / step).floor() as usize) + 1;
        let mut mass = vec![0.0; nbins];
        for &s in samples {
            let idx = (((s - min) / step).round() as usize).min(nbins - 1);
            mass[idx] += 1.0;
        }
        Pmf::from_masses(min, step, mass)
    }

    /// The grid step.
    #[inline]
    pub fn step(&self) -> f64 {
        self.step
    }

    /// Value of the first bin center.
    #[inline]
    pub fn origin(&self) -> f64 {
        self.origin
    }

    /// Number of bins.
    #[inline]
    pub fn len(&self) -> usize {
        self.mass.len()
    }

    /// `true` iff the PMF has no bins (never true for a constructed PMF).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.mass.is_empty()
    }

    /// The masses, indexed by bin.
    #[inline]
    pub fn masses(&self) -> &[f64] {
        &self.mass
    }

    /// Value at bin `i`.
    #[inline]
    pub fn value_at(&self, i: usize) -> f64 {
        self.origin + i as f64 * self.step
    }

    /// Largest grid value carrying mass.
    #[inline]
    pub fn max_value(&self) -> f64 {
        self.value_at(self.mass.len() - 1)
    }

    /// Expected value.
    pub fn mean(&self) -> f64 {
        self.mass
            .iter()
            .enumerate()
            .map(|(i, &m)| m * self.value_at(i))
            .sum()
    }

    /// Variance.
    pub fn variance(&self) -> f64 {
        let mu = self.mean();
        self.mass
            .iter()
            .enumerate()
            .map(|(i, &m)| {
                let d = self.value_at(i) - mu;
                m * d * d
            })
            .sum()
    }

    /// `P(X <= x)`, piecewise-linear between bin centers (so that the CCDF —
    /// and therefore the violation probability as a function of frequency —
    /// is continuous, which the paper's Fig. 5 depicts and which makes the
    /// binary search over frequencies well behaved).
    pub fn cdf(&self, x: f64) -> f64 {
        if x < self.origin {
            return 0.0;
        }
        if x >= self.max_value() {
            return 1.0;
        }
        let pos = (x - self.origin) / self.step;
        let i = pos.floor() as usize;
        let frac = pos - i as f64;
        // cumulative mass up to and including bin i, plus a linear share of
        // bin i+1's mass.
        let mut cum = 0.0;
        for &m in &self.mass[..=i] {
            cum += m;
        }
        cum + frac * self.mass.get(i + 1).copied().unwrap_or(0.0)
    }

    /// `P(X > x)` — the violation probability when `x = ω(D)`.
    #[inline]
    pub fn ccdf(&self, x: f64) -> f64 {
        (1.0 - self.cdf(x)).clamp(0.0, 1.0)
    }

    /// Smallest grid value `v` with `P(X <= v) >= p` (a staircase quantile).
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile level must be in [0,1]");
        let mut cum = 0.0;
        for (i, &m) in self.mass.iter().enumerate() {
            cum += m;
            if cum >= p - 1e-12 {
                return self.value_at(i);
            }
        }
        self.max_value()
    }

    /// Convolution: the distribution of the sum of two independent
    /// variables. Both PMFs must share the same grid step.
    ///
    /// # Panics
    /// Panics if the steps differ by more than a relative `1e-9`.
    pub fn convolve(&self, other: &Pmf) -> Pmf {
        assert!(
            (self.step - other.step).abs() <= STEP_TOL * self.step.max(other.step),
            "convolving PMFs requires identical grid steps ({} vs {})",
            self.step,
            other.step
        );
        let mass = conv::convolve(&self.mass, &other.mass);
        Pmf::from_masses(self.origin + other.origin, self.step, mass)
    }

    /// Shifts every value by `dx` (e.g. adding a deterministic overhead to a
    /// work distribution).
    pub fn shift(&self, dx: f64) -> Pmf {
        Pmf {
            origin: self.origin + dx,
            step: self.step,
            mass: self.mass.clone(),
        }
    }

    /// Drops leading/trailing bins whose cumulative mass is below `eps` and
    /// renormalizes. Keeps equivalent-request distributions from growing
    /// unboundedly as convolutions accumulate.
    pub fn truncated(&self, eps: f64) -> Pmf {
        let mut lo = 0usize;
        let mut cum = 0.0;
        while lo + 1 < self.mass.len() && cum + self.mass[lo] < eps / 2.0 {
            cum += self.mass[lo];
            lo += 1;
        }
        let mut hi = self.mass.len();
        cum = 0.0;
        while hi > lo + 1 && cum + self.mass[hi - 1] < eps / 2.0 {
            cum += self.mass[hi - 1];
            hi -= 1;
        }
        Pmf::from_masses(self.value_at(lo), self.step, self.mass[lo..hi].to_vec())
    }

    /// Samples a value using the provided uniform(0,1) draw, with linear
    /// jitter inside the chosen bin. Deterministic in `u`.
    pub fn sample_with(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0 - f64::EPSILON);
        let mut cum = 0.0;
        for (i, &m) in self.mass.iter().enumerate() {
            if u < cum + m {
                let frac = if m > 0.0 { (u - cum) / m } else { 0.5 };
                return self.value_at(i) + (frac - 0.5) * self.step;
            }
            cum += m;
        }
        self.max_value()
    }

    /// Builds a PMF by histogramming an [`crate::Empirical`] distribution
    /// into `bins` uniform bins.
    ///
    /// # Panics
    /// Panics if `bins == 0`.
    pub fn from_empirical(emp: &crate::Empirical, bins: usize) -> Pmf {
        assert!(bins > 0, "need at least one bin");
        let span = (emp.max() - emp.min()).max(f64::MIN_POSITIVE);
        let step = span / bins as f64;
        Pmf::from_samples(emp.sorted(), step)
    }

    /// Weighted mixture of PMFs sharing a grid step: the distribution of a
    /// draw from component `i` with probability `wᵢ/Σw` (e.g. the fast/slow
    /// query mix of a search service).
    ///
    /// # Panics
    /// Panics if `parts` is empty, weights are not positive, or grid steps
    /// differ.
    pub fn mixture(parts: &[(f64, Pmf)]) -> Pmf {
        assert!(!parts.is_empty(), "mixture needs at least one component");
        let step = parts[0].1.step();
        for (w, p) in parts {
            assert!(*w > 0.0, "mixture weights must be positive");
            assert!(
                (p.step() - step).abs() <= STEP_TOL * step,
                "mixture components must share a grid step"
            );
        }
        // Common grid: min origin, max top.
        let origin = parts
            .iter()
            .map(|(_, p)| p.origin())
            .fold(f64::INFINITY, f64::min);
        let top = parts
            .iter()
            .map(|(_, p)| p.max_value())
            .fold(f64::NEG_INFINITY, f64::max);
        let nbins = ((top - origin) / step).round() as usize + 1;
        let mut mass = vec![0.0; nbins];
        for (w, p) in parts {
            let offset = ((p.origin() - origin) / step).round() as usize;
            for (i, &m) in p.masses().iter().enumerate() {
                mass[offset + i] += w * m;
            }
        }
        Pmf::from_masses(origin, step, mass)
    }

    /// Conditional distribution of the *remaining* value given that at least
    /// `done` has already been consumed: `P(X - done = v | X > done)`.
    ///
    /// This is the paper's request-arrival-instance model (§III-B): when a
    /// request arrives while `R0` is mid-service, the in-flight request is
    /// replaced by `R0e`, whose distribution is the work left of `R0`.
    ///
    /// Returns `None` if `P(X > done)` is (numerically) zero.
    pub fn remaining_given_done(&self, done: f64) -> Option<Pmf> {
        if done <= self.origin {
            // All mass already lies above `done`: no conditioning needed.
            return Some(self.shift(-done));
        }
        // First bin index with value strictly greater than `done`.
        let start = (((done - self.origin) / self.step).floor() as usize) + 1;
        if start >= self.mass.len() {
            return None;
        }
        let tail: Vec<f64> = self.mass[start..].to_vec();
        if tail.iter().sum::<f64>() <= 0.0 {
            return None;
        }
        Some(Pmf::from_masses(
            self.value_at(start) - done,
            self.step,
            tail,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn die() -> Pmf {
        // Fair six-sided die on values 1..=6 with step 1.
        Pmf::from_masses(1.0, 1.0, vec![1.0; 6])
    }

    #[test]
    fn normalizes_on_construction() {
        let p = Pmf::from_masses(0.0, 0.5, vec![2.0, 6.0]);
        assert!((p.masses()[0] - 0.25).abs() < 1e-12);
        assert!((p.masses()[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn die_moments() {
        let d = die();
        assert!((d.mean() - 3.5).abs() < 1e-12);
        assert!((d.variance() - 35.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn two_dice_convolution() {
        let two = die().convolve(&die());
        assert_eq!(two.len(), 11);
        assert!((two.origin() - 2.0).abs() < 1e-12);
        assert!((two.mean() - 7.0).abs() < 1e-12);
        // P(sum = 7) = 6/36
        assert!((two.masses()[5] - 6.0 / 36.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_and_ccdf_are_complementary_and_monotone() {
        let d = die();
        let mut prev = -1.0;
        for k in 0..=70 {
            let x = k as f64 * 0.1;
            let c = d.cdf(x);
            assert!((c + d.ccdf(x) - 1.0).abs() < 1e-12);
            assert!(c + 1e-12 >= prev, "CDF must be monotone");
            prev = c;
        }
        assert_eq!(d.cdf(0.5), 0.0);
        assert_eq!(d.cdf(6.0), 1.0);
    }

    #[test]
    fn quantiles_of_die() {
        let d = die();
        assert_eq!(d.quantile(0.0), 1.0);
        assert_eq!(d.quantile(1.0 / 6.0), 1.0);
        assert_eq!(d.quantile(0.5), 3.0);
        assert_eq!(d.quantile(1.0), 6.0);
    }

    #[test]
    fn delta_behaviour() {
        let p = Pmf::delta(2.5, 0.1);
        assert_eq!(p.mean(), 2.5);
        assert_eq!(p.ccdf(2.4), 1.0);
        assert_eq!(p.ccdf(2.5), 0.0);
    }

    #[test]
    fn from_samples_centers_on_min() {
        let p = Pmf::from_samples(&[1.0, 1.0, 2.0, 3.0], 1.0);
        assert_eq!(p.origin(), 1.0);
        assert_eq!(p.len(), 3);
        assert!((p.masses()[0] - 0.5).abs() < 1e-12);
        assert!((p.mean() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn shift_moves_support() {
        let d = die().shift(10.0);
        assert!((d.mean() - 13.5).abs() < 1e-12);
        assert_eq!(d.quantile(0.0), 11.0);
    }

    #[test]
    fn truncation_drops_negligible_tails() {
        let mut mass = vec![1e-15; 100];
        mass[50] = 1.0;
        let p = Pmf::from_masses(0.0, 1.0, mass).truncated(1e-9);
        assert_eq!(p.len(), 1);
        assert_eq!(p.origin(), 50.0);
    }

    #[test]
    fn truncation_preserves_bulk_statistics() {
        let d = die().convolve(&die()).convolve(&die());
        let t = d.truncated(1e-12);
        assert!((d.mean() - t.mean()).abs() < 1e-9);
    }

    #[test]
    fn sample_with_hits_support() {
        let d = die();
        for k in 0..100 {
            let u = k as f64 / 100.0;
            let v = d.sample_with(u);
            assert!((0.5..=6.5).contains(&v), "sample {v} outside support");
        }
        // CDF inversion sanity: low u → low values, high u → high values.
        assert!(d.sample_with(0.01) < d.sample_with(0.99));
    }

    #[test]
    fn remaining_given_done_conditional() {
        let d = die();
        // Given X > 3, remaining X-3 is uniform on {1,2,3}.
        let r = d.remaining_given_done(3.0).unwrap();
        assert_eq!(r.origin(), 1.0);
        assert_eq!(r.len(), 3);
        for m in r.masses() {
            assert!((m - 1.0 / 3.0).abs() < 1e-12);
        }
        // Nothing remains past the maximum.
        assert!(d.remaining_given_done(6.0).is_none());
        // Zero work done returns the original distribution.
        let full = d.remaining_given_done(0.0).unwrap();
        assert!((full.mean() - d.mean()).abs() < 1e-12);
    }

    #[test]
    fn from_empirical_matches_statistics() {
        let samples: Vec<f64> = (0..1000)
            .map(|i| (i as f64 * 0.618).fract() * 10.0)
            .collect();
        let emp = crate::Empirical::new(samples.clone());
        let p = Pmf::from_empirical(&emp, 64);
        let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!(
            (p.mean() - mean).abs() < 0.2,
            "pmf mean {} vs {}",
            p.mean(),
            mean
        );
    }

    #[test]
    fn mixture_combines_mass_and_mean() {
        let fast = Pmf::delta(1.0, 1.0);
        let slow = Pmf::delta(5.0, 1.0);
        let mix = Pmf::mixture(&[(3.0, fast), (1.0, slow)]);
        // Mean = 0.75·1 + 0.25·5 = 2.0; total mass 1.
        assert!((mix.mean() - 2.0).abs() < 1e-12);
        let total: f64 = mix.masses().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((mix.ccdf(1.0) - 0.25).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "share a grid step")]
    fn mixture_rejects_mismatched_steps() {
        let a = Pmf::delta(1.0, 1.0);
        let b = Pmf::delta(1.0, 0.5);
        let _ = Pmf::mixture(&[(1.0, a), (1.0, b)]);
    }

    #[test]
    #[should_panic(expected = "identical grid steps")]
    fn convolve_rejects_mismatched_steps() {
        let a = Pmf::from_masses(0.0, 1.0, vec![1.0]);
        let b = Pmf::from_masses(0.0, 0.5, vec![1.0]);
        let _ = a.convolve(&b);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_step_rejected() {
        let _ = Pmf::from_masses(0.0, 0.0, vec![1.0]);
    }
}
