//! Empirical distributions built from raw samples.
//!
//! The paper obtains per-request service-time distributions by logging 100 K
//! Xapian queries (§V-A). [`Empirical`] is the container for such logs: it
//! keeps the sorted samples and answers quantile / CCDF / sampling queries.

/// An empirical distribution over `f64` samples.
#[derive(Debug, Clone)]
pub struct Empirical {
    sorted: Vec<f64>,
}

impl Empirical {
    /// Builds an empirical distribution from samples (need not be sorted).
    ///
    /// # Panics
    /// Panics if `samples` is empty or contains NaN.
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "empirical distribution needs samples");
        assert!(
            samples.iter().all(|s| !s.is_nan()),
            "samples must not contain NaN"
        );
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after check"));
        Empirical { sorted: samples }
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` iff there are no samples (never, post-construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted samples.
    #[inline]
    pub fn sorted(&self) -> &[f64] {
        &self.sorted
    }

    /// Minimum sample.
    #[inline]
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum sample.
    #[inline]
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty")
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Quantile with linear interpolation between order statistics
    /// (the "type 7" estimator used by most statistics packages).
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        crate::quantile::percentile_of_sorted(&self.sorted, p)
    }

    /// Empirical `P(X <= x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        // partition_point returns the count of samples <= x.
        let count = self.sorted.partition_point(|&s| s <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Empirical `P(X > x)`.
    #[inline]
    pub fn ccdf(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }

    /// Inverse-transform sampling from a uniform(0,1) draw.
    pub fn sample_with(&self, u: f64) -> f64 {
        self.quantile(u.clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_on_construction() {
        let e = Empirical::new(vec![3.0, 1.0, 2.0]);
        assert_eq!(e.sorted(), &[1.0, 2.0, 3.0]);
        assert_eq!(e.min(), 1.0);
        assert_eq!(e.max(), 3.0);
        assert_eq!(e.len(), 3);
    }

    #[test]
    fn quantiles_interpolate() {
        let e = Empirical::new(vec![0.0, 10.0]);
        assert_eq!(e.quantile(0.0), 0.0);
        assert_eq!(e.quantile(0.5), 5.0);
        assert_eq!(e.quantile(1.0), 10.0);
    }

    #[test]
    fn cdf_counts_correctly() {
        let e = Empirical::new(vec![1.0, 2.0, 2.0, 4.0]);
        assert_eq!(e.cdf(0.5), 0.0);
        assert_eq!(e.cdf(1.0), 0.25);
        assert_eq!(e.cdf(2.0), 0.75);
        assert_eq!(e.cdf(100.0), 1.0);
        assert!((e.ccdf(2.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn mean_is_sample_mean() {
        let e = Empirical::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert!((e.mean() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn sampling_spans_support() {
        let e = Empirical::new((0..=100).map(|i| i as f64).collect());
        assert_eq!(e.sample_with(0.0), 0.0);
        assert_eq!(e.sample_with(1.0), 100.0);
        let mid = e.sample_with(0.5);
        assert!((mid - 50.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "needs samples")]
    fn empty_rejected() {
        let _ = Empirical::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = Empirical::new(vec![1.0, f64::NAN]);
    }
}
