//! Convolution of non-negative real sequences.
//!
//! Convolution is how EPRONS-Server forms *equivalent requests* (§III-A of
//! the paper): the work distribution of the n-th queued request is the
//! convolution of its own work PMF with the PMFs of all requests ahead of
//! it. Small sequences use the direct O(n·m) algorithm; longer ones switch
//! to FFT convolution (the paper's implementation choice, ≈20 µs per
//! convolution).

use std::cell::RefCell;

use crate::complex::Complex;
use crate::fft::{next_pow2, FftPlan};

/// Length above which [`convolve`] switches from the direct algorithm to
/// FFT. Chosen empirically; the crossover is benchmarked in
/// `bench/benches/numerics.rs` (with plan reuse the break-even sits near
/// 64–128 combined taps on commodity x86: below that the O(n·m) inner loop
/// beats three transforms plus the complex multiply, above it the
/// O(n log n) transforms win) and pinned by `crossover_boundary_*` tests.
pub const FFT_THRESHOLD: usize = 96;

thread_local! {
    /// Per-thread [`FftPlan`] cache indexed by `log2(n)`. Every equivalent-
    /// request convolution for a given service model hits the same handful
    /// of power-of-two sizes thousands of times per simulated second, so
    /// twiddle tables are built once per thread instead of per call.
    /// Thread-local (not global) to keep the hot path lock-free under the
    /// sharded cluster simulation.
    static PLAN_CACHE: RefCell<Vec<Option<FftPlan>>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with the cached plan for power-of-two size `n`, building (and
/// retaining) the plan on first use. `f` must not call back into this
/// function (single `RefCell` borrow).
fn with_cached_plan<R>(n: usize, f: impl FnOnce(&FftPlan) -> R) -> R {
    debug_assert!(n.is_power_of_two());
    let idx = n.trailing_zeros() as usize;
    PLAN_CACHE.with(|c| {
        let mut cache = c.borrow_mut();
        if cache.len() <= idx {
            cache.resize_with(idx + 1, || None);
        }
        let plan = cache[idx].get_or_insert_with(|| FftPlan::new(n));
        f(plan)
    })
}

/// The distinct plan sizes currently cached on this thread (ascending).
/// Introspection for tests and the perfbench report.
pub fn cached_plan_sizes() -> Vec<usize> {
    PLAN_CACHE.with(|c| {
        c.borrow()
            .iter()
            .filter_map(|p| p.as_ref().map(FftPlan::len))
            .collect()
    })
}

/// Drops this thread's cached FFT plans (so tests can observe cold-start
/// behaviour).
pub fn clear_plan_cache() {
    PLAN_CACHE.with(|c| c.borrow_mut().clear());
}

/// Direct (schoolbook) linear convolution: `out[k] = Σ_i a[i]·b[k-i]`.
///
/// Returns a vector of length `a.len() + b.len() - 1` (empty if either
/// input is empty).
pub fn convolve_direct(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0.0; a.len() + b.len() - 1];
    // Iterate the shorter sequence on the outside for better locality.
    let (outer, inner) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    for (i, &x) in outer.iter().enumerate() {
        if x == 0.0 {
            continue;
        }
        for (j, &y) in inner.iter().enumerate() {
            out[i + j] += x * y;
        }
    }
    out
}

/// FFT-based linear convolution with the same contract as
/// [`convolve_direct`].
///
/// Negative floating-point dust (tiny values produced by round-off where the
/// true result is zero or positive) is clamped to `0.0` so probability mass
/// functions stay valid.
pub fn convolve_fft(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let out_len = a.len() + b.len() - 1;
    let n = next_pow2(out_len);
    let mut fa: Vec<Complex> = Vec::with_capacity(n);
    fa.extend(a.iter().map(|&x| Complex::from_real(x)));
    fa.resize(n, Complex::ZERO);
    let mut fb: Vec<Complex> = Vec::with_capacity(n);
    fb.extend(b.iter().map(|&x| Complex::from_real(x)));
    fb.resize(n, Complex::ZERO);
    with_cached_plan(n, |plan| {
        plan.forward(&mut fa);
        plan.forward(&mut fb);
        for (x, y) in fa.iter_mut().zip(&fb) {
            *x *= *y;
        }
        plan.inverse(&mut fa);
    });
    fa.truncate(out_len);
    fa.into_iter().map(|z| z.re.max(0.0)).collect()
}

/// Convolution that picks the direct or FFT algorithm based on input size.
pub fn convolve(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.len().min(b.len()) < 2 || a.len() + b.len() < FFT_THRESHOLD {
        convolve_direct(a, b)
    } else {
        convolve_fft(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn direct_matches_by_hand() {
        // (1 + 2x)(3 + 4x) = 3 + 10x + 8x²
        assert_close(
            &convolve_direct(&[1.0, 2.0], &[3.0, 4.0]),
            &[3.0, 10.0, 8.0],
            1e-12,
        );
    }

    #[test]
    fn identity_element() {
        let a = [0.25, 0.5, 0.25];
        assert_close(&convolve_direct(&a, &[1.0]), &a, 1e-12);
        assert_close(&convolve_fft(&a, &[1.0]), &a, 1e-9);
    }

    #[test]
    fn empty_inputs_yield_empty() {
        assert!(convolve_direct(&[], &[1.0]).is_empty());
        assert!(convolve_fft(&[1.0], &[]).is_empty());
        assert!(convolve(&[], &[]).is_empty());
    }

    #[test]
    fn fft_matches_direct_on_random_sequences() {
        // Deterministic pseudo-random input (LCG) — no rand dep needed here.
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for (la, lb) in [(5, 7), (64, 64), (100, 3), (130, 257)] {
            let a: Vec<f64> = (0..la).map(|_| next()).collect();
            let b: Vec<f64> = (0..lb).map(|_| next()).collect();
            let d = convolve_direct(&a, &b);
            let f = convolve_fft(&a, &b);
            assert_close(&d, &f, 1e-8);
        }
    }

    #[test]
    fn convolution_preserves_total_mass() {
        // For PMFs: sum of convolution = product of sums = 1.
        let a = [0.2, 0.3, 0.5];
        let b = [0.1, 0.4, 0.4, 0.1];
        let c = convolve(&a, &b);
        let total: f64 = c.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn convolution_is_commutative() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [0.5, 0.25];
        assert_close(&convolve(&a, &b), &convolve(&b, &a), 1e-12);
    }

    #[test]
    fn fft_clamps_negative_dust() {
        let a = vec![1e-30; 200];
        let b = vec![1e-30; 200];
        for v in convolve_fft(&a, &b) {
            assert!(v >= 0.0);
        }
    }

    #[test]
    fn crossover_boundary_agrees_both_sides() {
        // One tap either side of FFT_THRESHOLD: the dispatcher switches
        // algorithms here, and the results must agree to FFT round-off.
        let half = FFT_THRESHOLD / 2;
        for total in [FFT_THRESHOLD - 1, FFT_THRESHOLD, FFT_THRESHOLD + 1] {
            let a: Vec<f64> = (0..half).map(|i| 1.0 / (i + 1) as f64).collect();
            let b: Vec<f64> = (0..total - half).map(|i| 0.5 / (i + 2) as f64).collect();
            let picked = convolve(&a, &b);
            let direct = convolve_direct(&a, &b);
            assert_close(&picked, &direct, 1e-9);
        }
    }

    #[test]
    fn crossover_boundary_picks_the_right_algorithm() {
        // Observable through the plan cache: the direct side must not
        // build a plan, the FFT side must.
        clear_plan_cache();
        let below: Vec<f64> = vec![0.01; FFT_THRESHOLD / 2 - 1];
        let _ = convolve(&below, &below); // total = THRESHOLD - 2 → direct
        assert!(
            cached_plan_sizes().is_empty(),
            "direct path must not touch the plan cache"
        );
        let at: Vec<f64> = vec![0.01; FFT_THRESHOLD / 2];
        let _ = convolve(&at, &at); // total = THRESHOLD → FFT
        assert_eq!(
            cached_plan_sizes(),
            vec![next_pow2(FFT_THRESHOLD - 1)],
            "FFT path must build exactly one plan"
        );
        clear_plan_cache();
    }

    #[test]
    fn plan_cache_is_reused_per_size() {
        clear_plan_cache();
        let a = vec![0.5; 120];
        for _ in 0..10 {
            let _ = convolve_fft(&a, &a);
        }
        // 10 convolutions at one size → one cached plan, not ten.
        assert_eq!(cached_plan_sizes().len(), 1);
        let b = vec![0.5; 600];
        let _ = convolve_fft(&b, &b);
        assert_eq!(cached_plan_sizes().len(), 2);
        clear_plan_cache();
        assert!(cached_plan_sizes().is_empty());
    }
}
