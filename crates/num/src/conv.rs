//! Convolution of non-negative real sequences.
//!
//! Convolution is how EPRONS-Server forms *equivalent requests* (§III-A of
//! the paper): the work distribution of the n-th queued request is the
//! convolution of its own work PMF with the PMFs of all requests ahead of
//! it. Small sequences use the direct O(n·m) algorithm; longer ones switch
//! to FFT convolution (the paper's implementation choice, ≈20 µs per
//! convolution).

use crate::complex::Complex;
use crate::fft::{fft_in_place, ifft_in_place, next_pow2};

/// Length above which [`convolve`] switches from the direct algorithm to
/// FFT. Chosen empirically; the crossover is benchmarked in
/// `bench/benches/numerics.rs`.
pub const FFT_THRESHOLD: usize = 96;

/// Direct (schoolbook) linear convolution: `out[k] = Σ_i a[i]·b[k-i]`.
///
/// Returns a vector of length `a.len() + b.len() - 1` (empty if either
/// input is empty).
pub fn convolve_direct(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0.0; a.len() + b.len() - 1];
    // Iterate the shorter sequence on the outside for better locality.
    let (outer, inner) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    for (i, &x) in outer.iter().enumerate() {
        if x == 0.0 {
            continue;
        }
        for (j, &y) in inner.iter().enumerate() {
            out[i + j] += x * y;
        }
    }
    out
}

/// FFT-based linear convolution with the same contract as
/// [`convolve_direct`].
///
/// Negative floating-point dust (tiny values produced by round-off where the
/// true result is zero or positive) is clamped to `0.0` so probability mass
/// functions stay valid.
pub fn convolve_fft(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let out_len = a.len() + b.len() - 1;
    let n = next_pow2(out_len);
    let mut fa: Vec<Complex> = Vec::with_capacity(n);
    fa.extend(a.iter().map(|&x| Complex::from_real(x)));
    fa.resize(n, Complex::ZERO);
    let mut fb: Vec<Complex> = Vec::with_capacity(n);
    fb.extend(b.iter().map(|&x| Complex::from_real(x)));
    fb.resize(n, Complex::ZERO);
    fft_in_place(&mut fa);
    fft_in_place(&mut fb);
    for (x, y) in fa.iter_mut().zip(&fb) {
        *x *= *y;
    }
    ifft_in_place(&mut fa);
    fa.truncate(out_len);
    fa.into_iter().map(|z| z.re.max(0.0)).collect()
}

/// Convolution that picks the direct or FFT algorithm based on input size.
pub fn convolve(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.len().min(b.len()) < 2 || a.len() + b.len() < FFT_THRESHOLD {
        convolve_direct(a, b)
    } else {
        convolve_fft(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn direct_matches_by_hand() {
        // (1 + 2x)(3 + 4x) = 3 + 10x + 8x²
        assert_close(
            &convolve_direct(&[1.0, 2.0], &[3.0, 4.0]),
            &[3.0, 10.0, 8.0],
            1e-12,
        );
    }

    #[test]
    fn identity_element() {
        let a = [0.25, 0.5, 0.25];
        assert_close(&convolve_direct(&a, &[1.0]), &a, 1e-12);
        assert_close(&convolve_fft(&a, &[1.0]), &a, 1e-9);
    }

    #[test]
    fn empty_inputs_yield_empty() {
        assert!(convolve_direct(&[], &[1.0]).is_empty());
        assert!(convolve_fft(&[1.0], &[]).is_empty());
        assert!(convolve(&[], &[]).is_empty());
    }

    #[test]
    fn fft_matches_direct_on_random_sequences() {
        // Deterministic pseudo-random input (LCG) — no rand dep needed here.
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for (la, lb) in [(5, 7), (64, 64), (100, 3), (130, 257)] {
            let a: Vec<f64> = (0..la).map(|_| next()).collect();
            let b: Vec<f64> = (0..lb).map(|_| next()).collect();
            let d = convolve_direct(&a, &b);
            let f = convolve_fft(&a, &b);
            assert_close(&d, &f, 1e-8);
        }
    }

    #[test]
    fn convolution_preserves_total_mass() {
        // For PMFs: sum of convolution = product of sums = 1.
        let a = [0.2, 0.3, 0.5];
        let b = [0.1, 0.4, 0.4, 0.1];
        let c = convolve(&a, &b);
        let total: f64 = c.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn convolution_is_commutative() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [0.5, 0.25];
        assert_close(&convolve(&a, &b), &convolve(&b, &a), 1e-12);
    }

    #[test]
    fn fft_clamps_negative_dust() {
        let a = vec![1e-30; 200];
        let b = vec![1e-30; 200];
        for v in convolve_fft(&a, &b) {
            assert!(v >= 0.0);
        }
    }
}
