//! Small descriptive-statistics helpers shared across the workspace.

/// Arithmetic mean. Returns `None` for an empty slice.
pub fn mean(v: &[f64]) -> Option<f64> {
    if v.is_empty() {
        None
    } else {
        Some(v.iter().sum::<f64>() / v.len() as f64)
    }
}

/// Population variance. Returns `None` for an empty slice.
pub fn variance(v: &[f64]) -> Option<f64> {
    let mu = mean(v)?;
    Some(v.iter().map(|x| (x - mu) * (x - mu)).sum::<f64>() / v.len() as f64)
}

/// Population standard deviation. Returns `None` for an empty slice.
pub fn stddev(v: &[f64]) -> Option<f64> {
    variance(v).map(f64::sqrt)
}

/// Weighted mean `Σ wᵢ·xᵢ / Σ wᵢ`. Returns `None` when the weights sum
/// to zero or the slices differ in length.
pub fn weighted_mean(values: &[f64], weights: &[f64]) -> Option<f64> {
    if values.len() != weights.len() {
        return None;
    }
    let wsum: f64 = weights.iter().sum();
    if wsum == 0.0 {
        return None;
    }
    Some(values.iter().zip(weights).map(|(x, w)| x * w).sum::<f64>() / wsum)
}

/// Running summary of a scalar series: count, mean, min, max and variance
/// via Welford's algorithm (numerically stable single pass).
#[derive(Debug, Clone, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        let d = x - self.mean;
        self.mean += d / self.count as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean, or `None` before any observation.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Population variance, or `None` before any observation.
    pub fn variance(&self) -> Option<f64> {
        (self.count > 0).then(|| self.m2 / self.count as f64)
    }

    /// Minimum, or `None` before any observation.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum, or `None` before any observation.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another summary into this one (parallel reduction step).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean = new_mean;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&v), Some(2.5));
        assert_eq!(variance(&v), Some(1.25));
        assert!((stddev(&v).unwrap() - 1.25f64.sqrt()).abs() < 1e-12);
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn weighted_mean_basics() {
        assert_eq!(weighted_mean(&[1.0, 3.0], &[1.0, 1.0]), Some(2.0));
        assert_eq!(weighted_mean(&[1.0, 3.0], &[3.0, 1.0]), Some(1.5));
        assert_eq!(weighted_mean(&[1.0], &[0.0]), None);
        assert_eq!(weighted_mean(&[1.0], &[1.0, 2.0]), None);
    }

    #[test]
    fn summary_matches_batch() {
        let v = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut s = Summary::new();
        for &x in &v {
            s.add(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean().unwrap() - mean(&v).unwrap()).abs() < 1e-12);
        assert!((s.variance().unwrap() - variance(&v).unwrap()).abs() < 1e-12);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn summary_merge_equals_combined() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        let mut sa = Summary::new();
        let mut sb = Summary::new();
        for &x in &a {
            sa.add(x);
        }
        for &x in &b {
            sb.add(x);
        }
        sa.merge(&sb);
        let all: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(sa.count(), 7);
        assert!((sa.mean().unwrap() - mean(&all).unwrap()).abs() < 1e-12);
        assert!((sa.variance().unwrap() - variance(&all).unwrap()).abs() < 1e-9);
        assert_eq!(sa.min(), Some(1.0));
        assert_eq!(sa.max(), Some(40.0));
    }

    #[test]
    fn summary_merge_with_empty() {
        let mut s = Summary::new();
        s.add(5.0);
        let empty = Summary::new();
        s.merge(&empty);
        assert_eq!(s.count(), 1);
        let mut e = Summary::new();
        e.merge(&s);
        assert_eq!(e.count(), 1);
        assert_eq!(e.mean(), Some(5.0));
    }
}
