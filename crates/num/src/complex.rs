//! A minimal complex-number type for the FFT.
//!
//! Only the operations the radix-2 FFT needs are implemented; this is not a
//! general complex-arithmetic library.

use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// `e^{iθ}` — a point on the unit circle at angle `theta` radians.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `re² + im²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) -> bool {
        (a.re - b.re).abs() < 1e-12 && (a.im - b.im).abs() < 1e-12
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(3.0, -4.0);
        assert!(close(z + Complex::ZERO, z));
        assert!(close(z * Complex::ONE, z));
        assert!(close(z - z, Complex::ZERO));
        assert!(close(z + (-z), Complex::ZERO));
    }

    #[test]
    fn multiplication_matches_by_hand() {
        // (1+2i)(3+4i) = 3+4i+6i+8i² = -5+10i
        let p = Complex::new(1.0, 2.0) * Complex::new(3.0, 4.0);
        assert!(close(p, Complex::new(-5.0, 10.0)));
    }

    #[test]
    fn conjugate_and_norm() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.abs(), 5.0);
        assert!(close(z.conj(), Complex::new(3.0, 4.0)));
        // z * conj(z) = |z|²
        assert!(close(z * z.conj(), Complex::from_real(25.0)));
    }

    #[test]
    fn cis_is_on_unit_circle() {
        for k in 0..16 {
            let theta = k as f64 * std::f64::consts::PI / 8.0;
            let z = Complex::cis(theta);
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
        assert!(close(Complex::cis(0.0), Complex::ONE));
    }

    #[test]
    fn assign_ops_match_binary_ops() {
        let mut z = Complex::new(1.5, -0.5);
        let w = Complex::new(-2.0, 3.0);
        let mut a = z;
        a += w;
        assert!(close(a, z + w));
        a = z;
        a -= w;
        assert!(close(a, z - w));
        a = z;
        a *= w;
        assert!(close(a, z * w));
        z += Complex::ZERO;
        assert!(close(z, Complex::new(1.5, -0.5)));
    }
}
