//! Piecewise-linear lookup tables.
//!
//! EPRONS parameterizes several measured curves: the link-utilization →
//! latency curve (paper Fig. 1), the CPU frequency → power curve (§V-A),
//! and the trained K → tail-latency model (§IV-A). [`LinearTable`] is the
//! common representation: monotone-x knots with linear interpolation and
//! clamped extrapolation.

/// A piecewise-linear function defined by `(x, y)` knots with strictly
/// increasing `x`. Queries outside the knot range clamp to the end values.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearTable {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl LinearTable {
    /// Builds a table from knots.
    ///
    /// # Panics
    /// Panics if fewer than one knot is given or `x` values are not
    /// strictly increasing / finite.
    pub fn new(knots: &[(f64, f64)]) -> Self {
        assert!(!knots.is_empty(), "LinearTable needs at least one knot");
        let mut xs = Vec::with_capacity(knots.len());
        let mut ys = Vec::with_capacity(knots.len());
        for &(x, y) in knots {
            assert!(x.is_finite() && y.is_finite(), "knots must be finite");
            if let Some(&last) = xs.last() {
                assert!(x > last, "knot x values must be strictly increasing");
            }
            xs.push(x);
            ys.push(y);
        }
        LinearTable { xs, ys }
    }

    /// The knot x-coordinates.
    #[inline]
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The knot y-coordinates.
    #[inline]
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// Evaluates the function at `x` (clamped extrapolation).
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.xs.len();
        if x <= self.xs[0] {
            return self.ys[0];
        }
        if x >= self.xs[n - 1] {
            return self.ys[n - 1];
        }
        // Index of the first knot with xs[i] > x; the segment is [i-1, i].
        let i = self.xs.partition_point(|&k| k <= x);
        let (x0, x1) = (self.xs[i - 1], self.xs[i]);
        let (y0, y1) = (self.ys[i - 1], self.ys[i]);
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }

    /// Inverse lookup for monotonically *increasing* tables: smallest `x`
    /// with `eval(x) >= y`, or `None` if `y` exceeds the table's maximum.
    pub fn inverse_increasing(&self, y: f64) -> Option<f64> {
        let n = self.xs.len();
        if y <= self.ys[0] {
            return Some(self.xs[0]);
        }
        if y > self.ys[n - 1] {
            return None;
        }
        for i in 1..n {
            if self.ys[i] >= y {
                let (x0, x1) = (self.xs[i - 1], self.xs[i]);
                let (y0, y1) = (self.ys[i - 1], self.ys[i]);
                if (y1 - y0).abs() < f64::EPSILON {
                    return Some(x0);
                }
                return Some(x0 + (x1 - x0) * (y - y0) / (y1 - y0));
            }
        }
        Some(self.xs[n - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolates_linearly() {
        let t = LinearTable::new(&[(0.0, 0.0), (10.0, 100.0)]);
        assert_eq!(t.eval(0.0), 0.0);
        assert_eq!(t.eval(5.0), 50.0);
        assert_eq!(t.eval(10.0), 100.0);
    }

    #[test]
    fn clamps_outside_range() {
        let t = LinearTable::new(&[(1.0, 2.0), (2.0, 4.0)]);
        assert_eq!(t.eval(0.0), 2.0);
        assert_eq!(t.eval(3.0), 4.0);
    }

    #[test]
    fn multi_segment() {
        let t = LinearTable::new(&[(0.0, 0.0), (1.0, 1.0), (2.0, 4.0)]);
        assert_eq!(t.eval(0.5), 0.5);
        assert_eq!(t.eval(1.5), 2.5);
    }

    #[test]
    fn single_knot_is_constant() {
        let t = LinearTable::new(&[(5.0, 42.0)]);
        assert_eq!(t.eval(-100.0), 42.0);
        assert_eq!(t.eval(5.0), 42.0);
        assert_eq!(t.eval(100.0), 42.0);
    }

    #[test]
    fn inverse_of_increasing_table() {
        let t = LinearTable::new(&[(0.0, 10.0), (1.0, 20.0), (2.0, 40.0)]);
        assert_eq!(t.inverse_increasing(10.0), Some(0.0));
        assert_eq!(t.inverse_increasing(15.0), Some(0.5));
        assert_eq!(t.inverse_increasing(30.0), Some(1.5));
        assert_eq!(t.inverse_increasing(40.0), Some(2.0));
        assert_eq!(t.inverse_increasing(41.0), None);
        assert_eq!(t.inverse_increasing(5.0), Some(0.0));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_non_monotone_knots() {
        let _ = LinearTable::new(&[(0.0, 0.0), (0.0, 1.0)]);
    }

    #[test]
    fn eval_inverse_round_trip() {
        let t = LinearTable::new(&[(0.0, 1.0), (2.0, 3.0), (5.0, 9.0)]);
        for k in 0..=20 {
            let x = k as f64 * 0.25;
            let y = t.eval(x);
            let xi = t.inverse_increasing(y).unwrap();
            assert!((t.eval(xi) - y).abs() < 1e-9);
        }
    }
}
