//! Property-based tests for the numerics substrate (deterministic seeded
//! cases via `eprons-proplite`).

use eprons_num::complex::Complex;
use eprons_num::conv::{convolve, convolve_direct, convolve_fft};
use eprons_num::fft::{fft_in_place, ifft_in_place, next_pow2};
use eprons_num::quantile::{percentile, P2Quantile};
use eprons_num::{Empirical, LinearTable, Pmf};
use eprons_proplite::{cases, Gen};

fn finite_vec(g: &mut Gen, max_len: usize) -> Vec<f64> {
    let len = g.usize_in(1, max_len - 1);
    g.vec_f64(len, -1.0e3, 1.0e3)
}

fn mass_vec(g: &mut Gen, max_len: usize) -> Vec<f64> {
    loop {
        let len = g.usize_in(1, max_len - 1);
        let v = g.vec_f64(len, 0.0, 10.0);
        if v.iter().sum::<f64>() > 1e-6 {
            return v;
        }
    }
}

#[test]
fn fft_round_trip_recovers_input() {
    cases(256, |g, case| {
        let v = finite_vec(g, 64);
        let n = next_pow2(v.len());
        let mut data: Vec<Complex> = v.iter().map(|&x| Complex::from_real(x)).collect();
        data.resize(n, Complex::ZERO);
        let original = data.clone();
        fft_in_place(&mut data);
        ifft_in_place(&mut data);
        for (a, b) in data.iter().zip(&original) {
            assert!((a.re - b.re).abs() < 1e-6, "case {case}");
            assert!(a.im.abs() < 1e-6, "case {case}");
        }
    });
}

#[test]
fn fft_and_direct_convolution_agree() {
    cases(256, |g, case| {
        let a = mass_vec(g, 48);
        let b = mass_vec(g, 48);
        let d = convolve_direct(&a, &b);
        let f = convolve_fft(&a, &b);
        assert_eq!(d.len(), f.len(), "case {case}");
        let scale = a.iter().sum::<f64>() * b.iter().sum::<f64>();
        for (x, y) in d.iter().zip(&f) {
            assert!(
                (x - y).abs() < 1e-6 * scale.max(1.0),
                "case {case}: {x} vs {y}"
            );
        }
    });
}

#[test]
fn convolution_total_is_product_of_totals() {
    cases(256, |g, case| {
        let a = mass_vec(g, 32);
        let b = mass_vec(g, 32);
        let c = convolve(&a, &b);
        let expect = a.iter().sum::<f64>() * b.iter().sum::<f64>();
        let got: f64 = c.iter().sum();
        assert!((got - expect).abs() < 1e-6 * expect.max(1.0), "case {case}");
    });
}

#[test]
fn pmf_mean_of_convolution_adds() {
    cases(256, |g, case| {
        let ma = mass_vec(g, 24);
        let mb = mass_vec(g, 24);
        let oa = g.f64_in(-5.0, 5.0);
        let ob = g.f64_in(-5.0, 5.0);
        let a = Pmf::from_masses(oa, 0.25, ma);
        let b = Pmf::from_masses(ob, 0.25, mb);
        let c = a.convolve(&b);
        assert!(
            (c.mean() - (a.mean() + b.mean())).abs() < 1e-6,
            "case {case}"
        );
        // Variances add for independent sums.
        assert!(
            (c.variance() - (a.variance() + b.variance())).abs() < 1e-5,
            "case {case}"
        );
    });
}

#[test]
fn pmf_cdf_is_monotone_and_bounded() {
    cases(256, |g, case| {
        let m = mass_vec(g, 32);
        let origin = g.f64_in(-5.0, 5.0);
        let p = Pmf::from_masses(origin, 0.5, m);
        let lo = p.origin() - 1.0;
        let hi = p.max_value() + 1.0;
        let mut prev = -1e-12;
        for i in 0..=100 {
            let x = lo + (hi - lo) * i as f64 / 100.0;
            let c = p.cdf(x);
            assert!((0.0..=1.0 + 1e-12).contains(&c), "case {case}");
            assert!(c >= prev - 1e-9, "case {case}: CDF decreased at {x}");
            prev = c;
        }
        assert!(p.cdf(hi) > 1.0 - 1e-9, "case {case}");
        assert_eq!(p.cdf(lo), 0.0, "case {case}");
    });
}

#[test]
fn pmf_quantile_inverts_cdf() {
    cases(256, |g, case| {
        let m = mass_vec(g, 24);
        let q = g.f64();
        let p = Pmf::from_masses(0.0, 1.0, m);
        let v = p.quantile(q);
        // CDF at the quantile covers q.
        assert!(p.cdf(v) >= q - 1e-9, "case {case}");
    });
}

#[test]
fn pmf_sampling_stays_in_support() {
    cases(256, |g, case| {
        let m = mass_vec(g, 16);
        let u = g.f64();
        let p = Pmf::from_masses(2.0, 0.5, m);
        let v = p.sample_with(u);
        assert!(v >= p.origin() - 0.5 * p.step() - 1e-12, "case {case}");
        assert!(v <= p.max_value() + 0.5 * p.step() + 1e-12, "case {case}");
    });
}

#[test]
fn truncation_keeps_mass_one() {
    cases(256, |g, case| {
        let m = mass_vec(g, 32);
        let p = Pmf::from_masses(0.0, 1.0, m).truncated(1e-9);
        let total: f64 = p.masses().iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "case {case}");
    });
}

#[test]
fn percentile_within_range() {
    cases(256, |g, case| {
        let v = finite_vec(g, 128);
        let q = g.f64();
        let p = percentile(&v, q);
        let min = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(p >= min - 1e-9 && p <= max + 1e-9, "case {case}");
    });
}

#[test]
fn percentile_is_monotone_in_q() {
    cases(256, |g, case| {
        let v = finite_vec(g, 64);
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=10 {
            let p = percentile(&v, i as f64 / 10.0);
            assert!(p >= prev - 1e-12, "case {case}");
            prev = p;
        }
    });
}

#[test]
fn p2_stays_within_observed_range() {
    cases(256, |g, case| {
        let v = finite_vec(g, 256);
        let mut est = P2Quantile::new(0.9);
        for &x in &v {
            est.observe(x);
        }
        let e = est.estimate().unwrap();
        let min = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(e >= min - 1e-9 && e <= max + 1e-9, "case {case}");
    });
}

#[test]
fn empirical_quantiles_bracket_samples() {
    cases(256, |g, case| {
        let v = finite_vec(g, 64);
        let e = Empirical::new(v.clone());
        assert_eq!(e.quantile(0.0), e.min(), "case {case}");
        assert_eq!(e.quantile(1.0), e.max(), "case {case}");
        // CDF and CCDF are complementary.
        for &x in v.iter().take(8) {
            assert!((e.cdf(x) + e.ccdf(x) - 1.0).abs() < 1e-12, "case {case}");
        }
    });
}

#[test]
fn linear_table_stays_within_hull() {
    cases(256, |g, case| {
        let len = g.usize_in(2, 7);
        let ys = g.vec_f64(len, -10.0, 10.0);
        let x = g.f64_in(-20.0, 20.0);
        let knots: Vec<(f64, f64)> = ys.iter().enumerate().map(|(i, &y)| (i as f64, y)).collect();
        let t = LinearTable::new(&knots);
        let v = t.eval(x);
        let min = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(v >= min - 1e-9 && v <= max + 1e-9, "case {case}");
    });
}
