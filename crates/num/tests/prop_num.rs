//! Property-based tests for the numerics substrate.

use eprons_num::complex::Complex;
use eprons_num::conv::{convolve, convolve_direct, convolve_fft};
use eprons_num::fft::{fft_in_place, ifft_in_place, next_pow2};
use eprons_num::quantile::{percentile, P2Quantile};
use eprons_num::{Empirical, LinearTable, Pmf};
use proptest::prelude::*;

fn finite_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0e3..1.0e3f64, 1..max_len)
}

fn mass_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0..10.0f64, 1..max_len)
        .prop_filter("needs positive mass", |v| v.iter().sum::<f64>() > 1e-6)
}

proptest! {
    #[test]
    fn fft_round_trip_recovers_input(v in finite_vec(64)) {
        let n = next_pow2(v.len());
        let mut data: Vec<Complex> = v.iter().map(|&x| Complex::from_real(x)).collect();
        data.resize(n, Complex::ZERO);
        let original = data.clone();
        fft_in_place(&mut data);
        ifft_in_place(&mut data);
        for (a, b) in data.iter().zip(&original) {
            prop_assert!((a.re - b.re).abs() < 1e-6);
            prop_assert!(a.im.abs() < 1e-6);
        }
    }

    #[test]
    fn fft_and_direct_convolution_agree(a in mass_vec(48), b in mass_vec(48)) {
        let d = convolve_direct(&a, &b);
        let f = convolve_fft(&a, &b);
        prop_assert_eq!(d.len(), f.len());
        let scale = a.iter().sum::<f64>() * b.iter().sum::<f64>();
        for (x, y) in d.iter().zip(&f) {
            prop_assert!((x - y).abs() < 1e-6 * scale.max(1.0), "{} vs {}", x, y);
        }
    }

    #[test]
    fn convolution_total_is_product_of_totals(a in mass_vec(32), b in mass_vec(32)) {
        let c = convolve(&a, &b);
        let expect = a.iter().sum::<f64>() * b.iter().sum::<f64>();
        let got: f64 = c.iter().sum();
        prop_assert!((got - expect).abs() < 1e-6 * expect.max(1.0));
    }

    #[test]
    fn pmf_mean_of_convolution_adds(ma in mass_vec(24), mb in mass_vec(24),
                                    oa in -5.0..5.0f64, ob in -5.0..5.0f64) {
        let a = Pmf::from_masses(oa, 0.25, ma);
        let b = Pmf::from_masses(ob, 0.25, mb);
        let c = a.convolve(&b);
        prop_assert!((c.mean() - (a.mean() + b.mean())).abs() < 1e-6);
        // Variances add for independent sums.
        prop_assert!((c.variance() - (a.variance() + b.variance())).abs() < 1e-5);
    }

    #[test]
    fn pmf_cdf_is_monotone_and_bounded(m in mass_vec(32), origin in -5.0..5.0f64) {
        let p = Pmf::from_masses(origin, 0.5, m);
        let lo = p.origin() - 1.0;
        let hi = p.max_value() + 1.0;
        let mut prev = -1e-12;
        for i in 0..=100 {
            let x = lo + (hi - lo) * i as f64 / 100.0;
            let c = p.cdf(x);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&c));
            prop_assert!(c >= prev - 1e-9, "CDF decreased at {}", x);
            prev = c;
        }
        prop_assert!(p.cdf(hi) > 1.0 - 1e-9);
        prop_assert_eq!(p.cdf(lo), 0.0);
    }

    #[test]
    fn pmf_quantile_inverts_cdf(m in mass_vec(24), q in 0.0..1.0f64) {
        let p = Pmf::from_masses(0.0, 1.0, m);
        let v = p.quantile(q);
        // CDF at the quantile covers q.
        prop_assert!(p.cdf(v) >= q - 1e-9);
    }

    #[test]
    fn pmf_sampling_stays_in_support(m in mass_vec(16), u in 0.0..1.0f64) {
        let p = Pmf::from_masses(2.0, 0.5, m);
        let v = p.sample_with(u);
        prop_assert!(v >= p.origin() - 0.5 * p.step() - 1e-12);
        prop_assert!(v <= p.max_value() + 0.5 * p.step() + 1e-12);
    }

    #[test]
    fn truncation_keeps_mass_one(m in mass_vec(32)) {
        let p = Pmf::from_masses(0.0, 1.0, m).truncated(1e-9);
        let total: f64 = p.masses().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_within_range(v in finite_vec(128), q in 0.0..1.0f64) {
        let p = percentile(&v, q);
        let min = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p >= min - 1e-9 && p <= max + 1e-9);
    }

    #[test]
    fn percentile_is_monotone_in_q(v in finite_vec(64)) {
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=10 {
            let p = percentile(&v, i as f64 / 10.0);
            prop_assert!(p >= prev - 1e-12);
            prev = p;
        }
    }

    #[test]
    fn p2_stays_within_observed_range(v in finite_vec(256)) {
        let mut est = P2Quantile::new(0.9);
        for &x in &v {
            est.observe(x);
        }
        let e = est.estimate().unwrap();
        let min = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(e >= min - 1e-9 && e <= max + 1e-9);
    }

    #[test]
    fn empirical_quantiles_bracket_samples(v in finite_vec(64)) {
        let e = Empirical::new(v.clone());
        prop_assert_eq!(e.quantile(0.0), e.min());
        prop_assert_eq!(e.quantile(1.0), e.max());
        // CDF and CCDF are complementary.
        for &x in v.iter().take(8) {
            prop_assert!((e.cdf(x) + e.ccdf(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn linear_table_stays_within_hull(ys in prop::collection::vec(-10.0..10.0f64, 2..8),
                                      x in -20.0..20.0f64) {
        let knots: Vec<(f64, f64)> = ys.iter().enumerate()
            .map(|(i, &y)| (i as f64, y)).collect();
        let t = LinearTable::new(&knots);
        let v = t.eval(x);
        let min = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= min - 1e-9 && v <= max + 1e-9);
    }
}
