//! The paper's aggregation policies (Fig. 9).
//!
//! "From Aggregation 0 to Aggregation 3, we gradually turn off the
//! core-level switches and the corresponding aggregation-level switches"
//! (§V-B1). Concretely, on the k-ary fat-tree:
//!
//! | level | core groups on | cores per group | agg switches per pod |
//! |-------|----------------|-----------------|----------------------|
//! | 0     | all            | all             | all                  |
//! | 1     | all            | 1               | all                  |
//! | 2     | 1              | all             | 1                    |
//! | 3     | 1              | 1               | 1                    |
//!
//! Edge switches always stay on (hosts hang off them). For `k = 4` this
//! yields 20 / 18 / 14 / 13 active switches — the four consolidated
//! topologies of Fig. 9.

use crate::fattree::FatTree;
use crate::graph::{LinkId, NodeId};

/// One of the paper's four consolidation presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AggregationLevel {
    /// Everything on.
    Agg0,
    /// One core per group.
    Agg1,
    /// One core group (all its cores) and one aggregation switch per pod.
    Agg2,
    /// Minimal connected subnet: one core, one aggregation switch per pod.
    Agg3,
}

impl AggregationLevel {
    /// All levels, mildest first.
    pub const ALL: [AggregationLevel; 4] = [
        AggregationLevel::Agg0,
        AggregationLevel::Agg1,
        AggregationLevel::Agg2,
        AggregationLevel::Agg3,
    ];

    /// Numeric level, 0–3.
    pub fn index(self) -> usize {
        match self {
            AggregationLevel::Agg0 => 0,
            AggregationLevel::Agg1 => 1,
            AggregationLevel::Agg2 => 2,
            AggregationLevel::Agg3 => 3,
        }
    }

    /// Level from its index.
    ///
    /// # Panics
    /// Panics if `i > 3`.
    pub fn from_index(i: usize) -> Self {
        Self::ALL[i]
    }

    /// The switches left active under this policy.
    pub fn active_switches(self, ft: &FatTree) -> Vec<NodeId> {
        let half = ft.k() / 2;
        let (groups_on, cores_per_group, aggs_per_pod) = match self {
            AggregationLevel::Agg0 => (half, half, half),
            AggregationLevel::Agg1 => (half, 1, half),
            AggregationLevel::Agg2 => (1, half, 1),
            AggregationLevel::Agg3 => (1, 1, 1),
        };
        let mut active: Vec<NodeId> = ft.edge_switches().to_vec();
        for p in 0..ft.k() {
            for j in 0..aggs_per_pod {
                active.push(ft.agg(p, j));
            }
        }
        for g in 0..groups_on {
            for m in 0..cores_per_group {
                active.push(ft.core(g, m));
            }
        }
        active
    }

    /// The links whose both endpoints are active (hosts count as active).
    pub fn active_links(self, ft: &FatTree) -> Vec<LinkId> {
        let active = self.active_switches(ft);
        let is_on = |n: NodeId| !ft.topology().node(n).kind.is_switch() || active.contains(&n);
        ft.topology()
            .links()
            .filter(|(_, l)| is_on(l.a) && is_on(l.b))
            .map(|(id, _)| id)
            .collect()
    }

    /// Number of active switches under this policy for the given tree.
    pub fn active_switch_count(self, ft: &FatTree) -> usize {
        self.active_switches(ft).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::bfs_path;

    #[test]
    fn four_ary_active_counts_match_fig9() {
        let ft = FatTree::new(4, 1000.0);
        let counts: Vec<usize> = AggregationLevel::ALL
            .iter()
            .map(|l| l.active_switch_count(&ft))
            .collect();
        assert_eq!(counts, vec![20, 18, 14, 13]);
    }

    #[test]
    fn every_level_keeps_all_edges() {
        let ft = FatTree::new(4, 1000.0);
        for level in AggregationLevel::ALL {
            let active = level.active_switches(&ft);
            for &e in ft.edge_switches() {
                assert!(active.contains(&e), "{level:?} must keep edge switches");
            }
        }
    }

    #[test]
    fn all_levels_keep_full_host_connectivity() {
        let ft = FatTree::new(4, 1000.0);
        let hosts = ft.hosts().to_vec();
        for level in AggregationLevel::ALL {
            let active = level.active_switches(&ft);
            let ok = |n: NodeId| !ft.topology().node(n).kind.is_switch() || active.contains(&n);
            // Spot-check all pairs from the first host plus a cross-pod pair.
            for &dst in &hosts[1..] {
                let p = bfs_path(ft.topology(), hosts[0], dst, ok, |_| true);
                assert!(p.is_some(), "{level:?} disconnects {dst:?}");
            }
        }
    }

    #[test]
    fn levels_shrink_monotonically() {
        // Switch counts strictly decrease with the level; Agg0 contains
        // every other level's active set, and Agg3 ⊆ Agg2.
        let ft = FatTree::new(4, 1000.0);
        let mut prev = usize::MAX;
        for level in AggregationLevel::ALL {
            let n = level.active_switch_count(&ft);
            assert!(n < prev, "{level:?} should strictly shrink");
            prev = n;
        }
        let all = AggregationLevel::Agg0.active_switches(&ft);
        for level in &AggregationLevel::ALL[1..] {
            assert!(level.active_switches(&ft).iter().all(|s| all.contains(s)));
        }
        let a2 = AggregationLevel::Agg2.active_switches(&ft);
        assert!(AggregationLevel::Agg3
            .active_switches(&ft)
            .iter()
            .all(|s| a2.contains(s)));
    }

    #[test]
    fn active_links_shrink_with_level() {
        let ft = FatTree::new(4, 1000.0);
        let mut prev = usize::MAX;
        for level in AggregationLevel::ALL {
            let n = level.active_links(&ft).len();
            assert!(n <= prev, "{level:?} should not add links");
            prev = n;
        }
        // Agg0 keeps everything.
        assert_eq!(
            AggregationLevel::Agg0.active_links(&ft).len(),
            ft.topology().num_links()
        );
    }

    #[test]
    fn index_round_trip() {
        for level in AggregationLevel::ALL {
            assert_eq!(AggregationLevel::from_index(level.index()), level);
        }
    }

    #[test]
    fn k8_counts_are_consistent() {
        let ft = FatTree::new(8, 1000.0);
        // edges=32 always; agg0: 32+32+16=80; agg3: 32+8+1=41.
        assert_eq!(AggregationLevel::Agg0.active_switch_count(&ft), 80);
        assert_eq!(AggregationLevel::Agg3.active_switch_count(&ft), 41);
    }
}
