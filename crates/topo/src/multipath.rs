//! Topology abstraction for consolidation.
//!
//! The paper notes that "our optimization model is independent of the
//! network topology" (§IV-B). [`MultipathTopology`] captures exactly what
//! the consolidators need — the graph, the host list, and each host pair's
//! ECMP candidate-path set — so the same greedy/MILP machinery runs on any
//! multipath fabric ([`crate::FatTree`], [`crate::LeafSpine`], …).

use crate::graph::{NodeId, Topology};
use crate::paths::{Path, PathRef};

/// A topology offering a finite candidate-path set per host pair.
pub trait MultipathTopology {
    /// The underlying graph.
    fn topology(&self) -> &Topology;

    /// All end hosts.
    fn host_list(&self) -> &[NodeId];

    /// The ECMP candidate paths from `src` to `dst` (both hosts).
    ///
    /// # Panics
    /// Implementations may panic if `src == dst` or either is not a host.
    fn candidate_paths(&self, src: NodeId, dst: NodeId) -> Vec<Path>;

    /// Visits each candidate path as a borrowed [`PathRef`], in the same
    /// order as [`candidate_paths`](Self::candidate_paths). Implementors
    /// with arena-backed storage override this to avoid allocating a
    /// `Vec<Path>` per pair; the default delegates to `candidate_paths`.
    fn for_each_candidate(&self, src: NodeId, dst: NodeId, f: &mut dyn FnMut(PathRef<'_>)) {
        for p in self.candidate_paths(src, dst) {
            f(PathRef::of(&p));
        }
    }

    /// The `idx`-th candidate path (same order as
    /// [`candidate_paths`](Self::candidate_paths)), or `None` past the
    /// end. Lets a caller materialize only the one path it selected.
    fn nth_candidate(&self, src: NodeId, dst: NodeId, idx: usize) -> Option<Path> {
        self.candidate_paths(src, dst).into_iter().nth(idx)
    }

    /// Assembles the `idx`-th candidate into caller-owned buffers (cleared
    /// first), or returns `false` past the end. Lets per-flow selection
    /// loops and bulk path materialization reuse two scratch buffers
    /// instead of paying two heap allocations per
    /// [`nth_candidate`](Self::nth_candidate) call — at fat-tree scale
    /// (10⁷ flows) the allocator traffic dominates the arithmetic.
    fn nth_candidate_into(
        &self,
        src: NodeId,
        dst: NodeId,
        idx: usize,
        nodes: &mut Vec<NodeId>,
        links: &mut Vec<crate::graph::LinkId>,
    ) -> bool {
        match self.nth_candidate(src, dst, idx) {
            Some(p) => {
                nodes.clear();
                links.clear();
                nodes.extend_from_slice(&p.nodes);
                links.extend_from_slice(&p.links);
                true
            }
            None => false,
        }
    }
}

impl<T: MultipathTopology + ?Sized> MultipathTopology for &T {
    fn topology(&self) -> &Topology {
        (**self).topology()
    }

    fn host_list(&self) -> &[NodeId] {
        (**self).host_list()
    }

    fn candidate_paths(&self, src: NodeId, dst: NodeId) -> Vec<Path> {
        (**self).candidate_paths(src, dst)
    }

    fn for_each_candidate(&self, src: NodeId, dst: NodeId, f: &mut dyn FnMut(PathRef<'_>)) {
        (**self).for_each_candidate(src, dst, f)
    }

    fn nth_candidate(&self, src: NodeId, dst: NodeId, idx: usize) -> Option<Path> {
        (**self).nth_candidate(src, dst, idx)
    }

    fn nth_candidate_into(
        &self,
        src: NodeId,
        dst: NodeId,
        idx: usize,
        nodes: &mut Vec<NodeId>,
        links: &mut Vec<crate::graph::LinkId>,
    ) -> bool {
        (**self).nth_candidate_into(src, dst, idx, nodes, links)
    }
}

impl<T: MultipathTopology + ?Sized> MultipathTopology for std::sync::Arc<T> {
    fn topology(&self) -> &Topology {
        (**self).topology()
    }

    fn host_list(&self) -> &[NodeId] {
        (**self).host_list()
    }

    fn candidate_paths(&self, src: NodeId, dst: NodeId) -> Vec<Path> {
        (**self).candidate_paths(src, dst)
    }

    fn for_each_candidate(&self, src: NodeId, dst: NodeId, f: &mut dyn FnMut(PathRef<'_>)) {
        (**self).for_each_candidate(src, dst, f)
    }

    fn nth_candidate(&self, src: NodeId, dst: NodeId, idx: usize) -> Option<Path> {
        (**self).nth_candidate(src, dst, idx)
    }

    fn nth_candidate_into(
        &self,
        src: NodeId,
        dst: NodeId,
        idx: usize,
        nodes: &mut Vec<NodeId>,
        links: &mut Vec<crate::graph::LinkId>,
    ) -> bool {
        (**self).nth_candidate_into(src, dst, idx, nodes, links)
    }
}

impl MultipathTopology for crate::FatTree {
    fn topology(&self) -> &Topology {
        crate::FatTree::topology(self)
    }

    fn host_list(&self) -> &[NodeId] {
        self.hosts()
    }

    fn candidate_paths(&self, src: NodeId, dst: NodeId) -> Vec<Path> {
        crate::paths::candidate_paths(self, src, dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FatTree;

    #[test]
    fn fat_tree_implements_the_trait() {
        let ft = FatTree::new(4, 1000.0);
        let t: &dyn MultipathTopology = &ft;
        assert_eq!(t.host_list().len(), 16);
        let paths = t.candidate_paths(t.host_list()[0], t.host_list()[15]);
        assert_eq!(paths.len(), 4);
        assert_eq!(t.topology().num_links(), 48);
    }

    #[test]
    fn default_visitors_agree_with_candidate_paths() {
        let ft = FatTree::new(4, 1000.0);
        let (a, b) = (ft.hosts()[0], ft.hosts()[15]);
        let owned = ft.candidate_paths(a, b);
        let mut seen = Vec::new();
        ft.for_each_candidate(a, b, &mut |p| seen.push(p.to_path()));
        assert_eq!(seen, owned);
        for (i, p) in owned.iter().enumerate() {
            assert_eq!(ft.nth_candidate(a, b, i).as_ref(), Some(p));
        }
        assert!(ft.nth_candidate(a, b, owned.len()).is_none());
        // Blanket impls forward the visitors too.
        let arc = std::sync::Arc::new(FatTree::new(4, 1000.0));
        let mut n = 0usize;
        arc.for_each_candidate(arc.host_list()[0], arc.host_list()[15], &mut |_| n += 1);
        assert_eq!(n, 4);
    }
}
