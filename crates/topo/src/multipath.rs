//! Topology abstraction for consolidation.
//!
//! The paper notes that "our optimization model is independent of the
//! network topology" (§IV-B). [`MultipathTopology`] captures exactly what
//! the consolidators need — the graph, the host list, and each host pair's
//! ECMP candidate-path set — so the same greedy/MILP machinery runs on any
//! multipath fabric ([`crate::FatTree`], [`crate::LeafSpine`], …).

use crate::graph::{NodeId, Topology};
use crate::paths::Path;

/// A topology offering a finite candidate-path set per host pair.
pub trait MultipathTopology {
    /// The underlying graph.
    fn topology(&self) -> &Topology;

    /// All end hosts.
    fn host_list(&self) -> &[NodeId];

    /// The ECMP candidate paths from `src` to `dst` (both hosts).
    ///
    /// # Panics
    /// Implementations may panic if `src == dst` or either is not a host.
    fn candidate_paths(&self, src: NodeId, dst: NodeId) -> Vec<Path>;
}

impl<T: MultipathTopology + ?Sized> MultipathTopology for &T {
    fn topology(&self) -> &Topology {
        (**self).topology()
    }

    fn host_list(&self) -> &[NodeId] {
        (**self).host_list()
    }

    fn candidate_paths(&self, src: NodeId, dst: NodeId) -> Vec<Path> {
        (**self).candidate_paths(src, dst)
    }
}

impl<T: MultipathTopology + ?Sized> MultipathTopology for std::sync::Arc<T> {
    fn topology(&self) -> &Topology {
        (**self).topology()
    }

    fn host_list(&self) -> &[NodeId] {
        (**self).host_list()
    }

    fn candidate_paths(&self, src: NodeId, dst: NodeId) -> Vec<Path> {
        (**self).candidate_paths(src, dst)
    }
}

impl MultipathTopology for crate::FatTree {
    fn topology(&self) -> &Topology {
        crate::FatTree::topology(self)
    }

    fn host_list(&self) -> &[NodeId] {
        self.hosts()
    }

    fn candidate_paths(&self, src: NodeId, dst: NodeId) -> Vec<Path> {
        crate::paths::candidate_paths(self, src, dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FatTree;

    #[test]
    fn fat_tree_implements_the_trait() {
        let ft = FatTree::new(4, 1000.0);
        let t: &dyn MultipathTopology = &ft;
        assert_eq!(t.host_list().len(), 16);
        let paths = t.candidate_paths(t.host_list()[0], t.host_list()[15]);
        assert_eq!(paths.len(), 4);
        assert_eq!(t.topology().num_links(), 48);
    }
}
