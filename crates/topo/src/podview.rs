//! Borrowed per-pod views over a fat-tree.
//!
//! A k-ary fat-tree is structurally hierarchical: a pod's hosts and
//! edge/aggregation switches form a self-contained 2-tier Clos, and the
//! only way in or out is the `(k/2)²` agg→core uplinks. [`PodView`]
//! exposes exactly that sub-fabric as contiguous slices plus O(1)
//! ordinal remaps over the owning [`FatTree`] — no graph copies, no
//! allocation. The pod-decomposed consolidator keys its per-pod
//! sub-problems on these views and hands only the uplink aggregates to
//! the core-stitch phase.

use crate::fattree::FatTree;
use crate::graph::{LinkId, NodeId};

/// A borrowed view of one pod of a [`FatTree`]: its hosts, edge and
/// aggregation switches, and its agg→core uplinks.
///
/// All lookups are O(1) against the tree's pod/tier remap tables; the
/// view itself is two words.
///
/// ```
/// use eprons_topo::FatTree;
/// let ft = FatTree::new(4, 1000.0);
/// let pv = ft.pod_view(2);
/// assert_eq!(pv.hosts().len(), 4);
/// assert_eq!(pv.aggs().len(), 2);
/// assert!(pv.contains(ft.edge(2, 0)));
/// assert!(!pv.contains(ft.edge(1, 0)));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct PodView<'a> {
    ft: &'a FatTree,
    pod: usize,
}

impl<'a> PodView<'a> {
    /// View of `pod` in `ft`.
    ///
    /// # Panics
    /// Panics if `pod >= ft.num_pods()`.
    pub fn new(ft: &'a FatTree, pod: usize) -> Self {
        assert!(pod < ft.num_pods(), "pod {pod} out of range (k={})", ft.k());
        PodView { ft, pod }
    }

    /// The pod ordinal this view covers.
    #[inline]
    pub fn pod(&self) -> usize {
        self.pod
    }

    /// The owning fat-tree.
    #[inline]
    pub fn tree(&self) -> &'a FatTree {
        self.ft
    }

    /// Edge/agg switches per tier (= `k/2`).
    #[inline]
    pub fn width(&self) -> usize {
        self.ft.k() / 2
    }

    /// This pod's hosts, ordered by `(edge index, slot)` — a contiguous
    /// slice of [`FatTree::hosts`].
    #[inline]
    pub fn hosts(&self) -> &'a [NodeId] {
        let per_pod = self.width() * self.width();
        &self.ft.hosts()[self.pod * per_pod..(self.pod + 1) * per_pod]
    }

    /// This pod's edge switches, ordered by index — a contiguous slice
    /// of [`FatTree::edge_switches`].
    #[inline]
    pub fn edges(&self) -> &'a [NodeId] {
        let half = self.width();
        &self.ft.edge_switches()[self.pod * half..(self.pod + 1) * half]
    }

    /// This pod's aggregation switches, ordered by index — a contiguous
    /// slice of [`FatTree::agg_switches`].
    #[inline]
    pub fn aggs(&self) -> &'a [NodeId] {
        let half = self.width();
        &self.ft.agg_switches()[self.pod * half..(self.pod + 1) * half]
    }

    /// Edge switch `i` of this pod.
    #[inline]
    pub fn edge(&self, i: usize) -> NodeId {
        self.ft.edge(self.pod, i)
    }

    /// Aggregation switch `j` of this pod.
    #[inline]
    pub fn agg(&self, j: usize) -> NodeId {
        self.ft.agg(self.pod, j)
    }

    /// Whether `n` (host, edge, or agg) belongs to this pod. Cores are
    /// never contained — they belong to the stitch layer.
    #[inline]
    pub fn contains(&self, n: NodeId) -> bool {
        self.ft.pod_of(n) == Some(self.pod)
    }

    /// In-pod ordinal of a host of this pod (`edge_i · k/2 + slot`).
    pub fn local_host(&self, n: NodeId) -> Option<usize> {
        let (p, i, s) = self.ft.host_slot(n)?;
        (p == self.pod).then(|| i * self.width() + s)
    }

    /// In-pod index of an edge switch of this pod.
    pub fn local_edge(&self, n: NodeId) -> Option<usize> {
        let (p, i) = self.ft.edge_ordinal(n)?;
        (p == self.pod).then_some(i)
    }

    /// In-pod index of an aggregation switch of this pod.
    pub fn local_agg(&self, n: NodeId) -> Option<usize> {
        let (p, j) = self.ft.agg_ordinal(n)?;
        (p == self.pod).then_some(j)
    }

    /// The intra-pod link between edge `i` and agg `j` (full bipartite,
    /// so it always exists).
    pub fn edge_agg_link(&self, i: usize, j: usize) -> LinkId {
        self.ft
            .topology()
            .link_between(self.edge(i), self.agg(j))
            .expect("fat-tree invariant: pod edge-agg tier is full bipartite")
    }

    /// The uplink from agg `j` of this pod to core `(j, m)`. Group is
    /// implied by `j`: agg `j` only reaches cores of group `j`.
    pub fn core_uplink(&self, j: usize, m: usize) -> LinkId {
        self.ft
            .topology()
            .link_between(self.agg(j), self.ft.core(j, m))
            .expect("fat-tree invariant: agg j connects to every core of group j")
    }

    /// Visits every agg→core uplink of this pod as
    /// `(agg index j, core member m, core node, link)`, in `(j, m)`
    /// order — the same group-major order candidate paths enumerate
    /// cores in.
    pub fn for_each_core_uplink(&self, mut f: impl FnMut(usize, usize, NodeId, LinkId)) {
        let half = self.width();
        for j in 0..half {
            for m in 0..half {
                f(j, m, self.ft.core(j, m), self.core_uplink(j, m));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slices_partition_the_tree() {
        let ft = FatTree::new(8, 1000.0);
        let mut hosts = Vec::new();
        let mut edges = Vec::new();
        let mut aggs = Vec::new();
        for p in 0..ft.num_pods() {
            let pv = ft.pod_view(p);
            assert_eq!(pv.hosts().len(), 16);
            assert_eq!(pv.edges().len(), 4);
            assert_eq!(pv.aggs().len(), 4);
            hosts.extend_from_slice(pv.hosts());
            edges.extend_from_slice(pv.edges());
            aggs.extend_from_slice(pv.aggs());
        }
        assert_eq!(hosts, ft.hosts());
        assert_eq!(edges, ft.edge_switches());
        assert_eq!(aggs, ft.agg_switches());
    }

    #[test]
    fn ordinal_remaps_invert_accessors() {
        let ft = FatTree::new(6, 1000.0);
        for p in 0..6 {
            let pv = ft.pod_view(p);
            for i in 0..3 {
                assert_eq!(pv.local_edge(pv.edge(i)), Some(i));
                assert_eq!(ft.edge_ordinal(pv.edge(i)), Some((p, i)));
                for j in 0..3 {
                    assert_eq!(pv.local_agg(pv.agg(j)), Some(j));
                    for s in 0..3 {
                        let h = ft.host(p, i, s);
                        assert_eq!(pv.local_host(h), Some(i * 3 + s));
                        assert_eq!(ft.host_slot(h), Some((p, i, s)));
                    }
                }
            }
        }
        // Foreign-pod and wrong-kind lookups miss.
        let pv0 = ft.pod_view(0);
        assert_eq!(pv0.local_edge(ft.edge(1, 0)), None);
        assert_eq!(pv0.local_agg(ft.edge(0, 0)), None);
        assert_eq!(ft.edge_ordinal(ft.agg(0, 0)), None);
        assert_eq!(ft.core_ordinal(ft.core(1, 2)), Some((1, 2)));
        assert_eq!(ft.core_ordinal(ft.host(0, 0, 0)), None);
        assert_eq!(ft.pod_of(ft.core(0, 0)), None);
    }

    #[test]
    fn containment_excludes_cores_and_other_pods() {
        let ft = FatTree::new(4, 1000.0);
        let pv = ft.pod_view(1);
        assert!(pv.contains(ft.host(1, 0, 1)));
        assert!(pv.contains(ft.agg(1, 1)));
        assert!(!pv.contains(ft.host(0, 0, 0)));
        assert!(!pv.contains(ft.core(0, 0)));
    }

    #[test]
    fn links_match_topology_wiring() {
        let ft = FatTree::new(4, 1000.0);
        let t = ft.topology();
        for p in 0..4 {
            let pv = ft.pod_view(p);
            for i in 0..2 {
                for j in 0..2 {
                    let l = pv.edge_agg_link(i, j);
                    assert!(t.link(l).touches(pv.edge(i)));
                    assert!(t.link(l).touches(pv.agg(j)));
                }
            }
            let mut seen = 0;
            pv.for_each_core_uplink(|j, m, core, l| {
                assert_eq!(ft.core_ordinal(core), Some((j, m)));
                assert!(t.link(l).touches(pv.agg(j)));
                assert!(t.link(l).touches(core));
                seen += 1;
            });
            assert_eq!(seen, 4);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_pod_rejected() {
        let ft = FatTree::new(4, 1000.0);
        let _ = ft.pod_view(4);
    }
}
