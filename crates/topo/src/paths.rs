//! Path representation and enumeration.
//!
//! The consolidation optimizer chooses, per flow, one path out of the flow's
//! ECMP candidate set (no splitting — paper eq. 9 forbids it to avoid packet
//! reordering). [`candidate_paths`] enumerates that set for a fat-tree;
//! [`bfs_path`] routes on an arbitrary active subgraph (used to verify
//! connectivity of aggregation policies and as a fallback router).

use std::collections::VecDeque;

use crate::fattree::FatTree;
use crate::graph::{LinkId, NodeId, Topology};

/// A simple path: `nodes.len() == links.len() + 1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    /// Visited nodes, source first.
    pub nodes: Vec<NodeId>,
    /// Traversed links, in order.
    pub links: Vec<LinkId>,
}

impl Path {
    /// Number of hops (links).
    #[inline]
    pub fn hop_count(&self) -> usize {
        self.links.len()
    }

    /// Source node.
    #[inline]
    pub fn src(&self) -> NodeId {
        self.nodes[0]
    }

    /// Destination node.
    #[inline]
    pub fn dst(&self) -> NodeId {
        *self.nodes.last().expect("paths are non-empty")
    }

    /// The switches on the path (all interior nodes).
    pub fn interior(&self) -> &[NodeId] {
        &self.nodes[1..self.nodes.len() - 1]
    }

    /// `true` iff the path uses `link`.
    pub fn uses_link(&self, link: LinkId) -> bool {
        self.links.contains(&link)
    }

    /// Iterates the path's hops as `(from, to, link)` triples — the
    /// directed view needed for full-duplex capacity accounting.
    pub fn hops(&self) -> impl Iterator<Item = (NodeId, NodeId, LinkId)> + '_ {
        self.links
            .iter()
            .enumerate()
            .map(|(i, &l)| (self.nodes[i], self.nodes[i + 1], l))
    }

    /// Validates internal consistency against a topology (each link joins
    /// consecutive nodes). Used by tests and debug assertions.
    pub fn is_consistent(&self, topo: &Topology) -> bool {
        if self.nodes.len() != self.links.len() + 1 {
            return false;
        }
        self.links.iter().enumerate().all(|(i, &l)| {
            let link = topo.link(l);
            link.touches(self.nodes[i])
                && link.touches(self.nodes[i + 1])
                && self.nodes[i] != self.nodes[i + 1]
        })
    }
}

/// A borrowed view of a path: two slices into storage owned elsewhere
/// (a [`Path`], or an arena's flat buffers). Lets path consumers walk
/// candidate sets without a heap allocation per path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathRef<'a> {
    /// Visited nodes, source first.
    pub nodes: &'a [NodeId],
    /// Traversed links, in order; `nodes.len() == links.len() + 1`.
    pub links: &'a [LinkId],
}

impl<'a> PathRef<'a> {
    /// Borrows an owned [`Path`].
    #[inline]
    pub fn of(path: &'a Path) -> Self {
        PathRef {
            nodes: &path.nodes,
            links: &path.links,
        }
    }

    /// Number of hops (links).
    #[inline]
    pub fn hop_count(&self) -> usize {
        self.links.len()
    }

    /// Source node.
    #[inline]
    pub fn src(&self) -> NodeId {
        self.nodes[0]
    }

    /// Destination node.
    #[inline]
    pub fn dst(&self) -> NodeId {
        *self.nodes.last().expect("paths are non-empty")
    }

    /// The switches on the path (all interior nodes).
    #[inline]
    pub fn interior(&self) -> &'a [NodeId] {
        &self.nodes[1..self.nodes.len() - 1]
    }

    /// `true` iff the path uses `link`.
    pub fn uses_link(&self, link: LinkId) -> bool {
        self.links.contains(&link)
    }

    /// Iterates the path's hops as `(from, to, link)` triples.
    pub fn hops(&self) -> impl Iterator<Item = (NodeId, NodeId, LinkId)> + 'a {
        let nodes = self.nodes;
        self.links
            .iter()
            .enumerate()
            .map(move |(i, &l)| (nodes[i], nodes[i + 1], l))
    }

    /// Copies into an owned [`Path`].
    pub fn to_path(&self) -> Path {
        Path {
            nodes: self.nodes.to_vec(),
            links: self.links.to_vec(),
        }
    }

    /// Validates internal consistency against a topology (each link joins
    /// consecutive nodes). Mirror of [`Path::is_consistent`].
    pub fn is_consistent(&self, topo: &Topology) -> bool {
        if self.nodes.len() != self.links.len() + 1 {
            return false;
        }
        self.links.iter().enumerate().all(|(i, &l)| {
            let link = topo.link(l);
            link.touches(self.nodes[i])
                && link.touches(self.nodes[i + 1])
                && self.nodes[i] != self.nodes[i + 1]
        })
    }
}

impl<'a> From<&'a Path> for PathRef<'a> {
    #[inline]
    fn from(path: &'a Path) -> Self {
        PathRef::of(path)
    }
}

fn link(topo: &Topology, a: NodeId, b: NodeId) -> LinkId {
    topo.link_between(a, b)
        .expect("fat-tree wiring guarantees this link exists")
}

fn path_via(topo: &Topology, nodes: Vec<NodeId>) -> Path {
    let links = nodes.windows(2).map(|w| link(topo, w[0], w[1])).collect();
    Path { nodes, links }
}

/// Enumerates every up/down ECMP candidate path between two distinct hosts
/// of a fat-tree:
///
/// * same edge switch: the single 2-hop path through that switch;
/// * same pod, different edge: one 4-hop path per aggregation switch;
/// * different pods: one 6-hop path per core switch.
///
/// # Panics
/// Panics if `src == dst` or either is not a host of `ft`.
pub fn candidate_paths(ft: &FatTree, src: NodeId, dst: NodeId) -> Vec<Path> {
    assert_ne!(src, dst, "src and dst must differ");
    let topo = ft.topology();
    let half = ft.k() / 2;
    let se = ft.host_edge(src);
    let de = ft.host_edge(dst);
    if se == de {
        return vec![path_via(topo, vec![src, se, dst])];
    }
    let sp = ft.host_pod(src);
    let dp = ft.host_pod(dst);
    if sp == dp {
        // One path per aggregation switch of the pod.
        (0..half)
            .map(|j| path_via(topo, vec![src, se, ft.agg(sp, j), de, dst]))
            .collect()
    } else {
        // One path per core switch: up via agg(sp, group), across the core,
        // down via agg(dp, group).
        let mut out = Vec::with_capacity(half * half);
        for group in 0..half {
            for m in 0..half {
                out.push(path_via(
                    topo,
                    vec![
                        src,
                        se,
                        ft.agg(sp, group),
                        ft.core(group, m),
                        ft.agg(dp, group),
                        de,
                        dst,
                    ],
                ));
            }
        }
        out
    }
}

/// Breadth-first shortest path from `src` to `dst` using only nodes and
/// links accepted by the filters (`src`/`dst` are always accepted).
pub fn bfs_path(
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    node_ok: impl Fn(NodeId) -> bool,
    link_ok: impl Fn(LinkId) -> bool,
) -> Option<Path> {
    if src == dst {
        return Some(Path {
            nodes: vec![src],
            links: vec![],
        });
    }
    let n = topo.num_nodes();
    let mut prev: Vec<Option<(NodeId, LinkId)>> = vec![None; n];
    let mut seen = vec![false; n];
    seen[src.0] = true;
    let mut queue = VecDeque::new();
    queue.push_back(src);
    'bfs: while let Some(u) = queue.pop_front() {
        for &(v, l) in topo.neighbors(u) {
            if seen[v.0] || !link_ok(l) {
                continue;
            }
            if v != dst && !node_ok(v) {
                continue;
            }
            seen[v.0] = true;
            prev[v.0] = Some((u, l));
            if v == dst {
                break 'bfs;
            }
            queue.push_back(v);
        }
    }
    if !seen[dst.0] {
        return None;
    }
    // Reconstruct.
    let mut nodes = vec![dst];
    let mut links = Vec::new();
    let mut cur = dst;
    while let Some((p, l)) = prev[cur.0] {
        nodes.push(p);
        links.push(l);
        cur = p;
    }
    nodes.reverse();
    links.reverse();
    Some(Path { nodes, links })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_edge_single_path() {
        let ft = FatTree::new(4, 1000.0);
        let a = ft.host(0, 0, 0);
        let b = ft.host(0, 0, 1);
        let ps = candidate_paths(&ft, a, b);
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].hop_count(), 2);
        assert!(ps[0].is_consistent(ft.topology()));
        assert_eq!(ps[0].interior(), &[ft.edge(0, 0)]);
    }

    #[test]
    fn same_pod_paths_one_per_agg() {
        let ft = FatTree::new(4, 1000.0);
        let a = ft.host(1, 0, 0);
        let b = ft.host(1, 1, 0);
        let ps = candidate_paths(&ft, a, b);
        assert_eq!(ps.len(), 2);
        for p in &ps {
            assert_eq!(p.hop_count(), 4);
            assert!(p.is_consistent(ft.topology()));
        }
        // Paths differ in the aggregation switch used.
        assert_ne!(ps[0].nodes[2], ps[1].nodes[2]);
    }

    #[test]
    fn cross_pod_paths_one_per_core() {
        let ft = FatTree::new(4, 1000.0);
        let a = ft.host(0, 0, 0);
        let b = ft.host(3, 1, 1);
        let ps = candidate_paths(&ft, a, b);
        assert_eq!(ps.len(), 4); // (k/2)² = 4 cores
        let mut cores_used: Vec<NodeId> = ps.iter().map(|p| p.nodes[3]).collect();
        cores_used.sort();
        cores_used.dedup();
        assert_eq!(cores_used.len(), 4, "each path crosses a distinct core");
        for p in &ps {
            assert_eq!(p.hop_count(), 6);
            assert!(p.is_consistent(ft.topology()));
            assert_eq!(p.src(), a);
            assert_eq!(p.dst(), b);
        }
    }

    #[test]
    fn k8_cross_pod_path_count() {
        let ft = FatTree::new(8, 1000.0);
        let a = ft.host(0, 0, 0);
        let b = ft.host(7, 3, 3);
        assert_eq!(candidate_paths(&ft, a, b).len(), 16); // (8/2)²
    }

    #[test]
    fn bfs_finds_shortest() {
        let ft = FatTree::new(4, 1000.0);
        let a = ft.host(0, 0, 0);
        let b = ft.host(2, 0, 0);
        let p = bfs_path(ft.topology(), a, b, |_| true, |_| true).unwrap();
        assert_eq!(p.hop_count(), 6);
        assert!(p.is_consistent(ft.topology()));
    }

    #[test]
    fn bfs_respects_node_filter() {
        let ft = FatTree::new(4, 1000.0);
        let a = ft.host(0, 0, 0);
        let b = ft.host(1, 0, 0);
        // Forbid every core except core(0,0): path must use it.
        let allowed_core = ft.core(0, 0);
        let cores: Vec<NodeId> = ft.core_switches().to_vec();
        let p = bfs_path(
            ft.topology(),
            a,
            b,
            |n| !cores.contains(&n) || n == allowed_core,
            |_| true,
        )
        .unwrap();
        assert!(p.nodes.contains(&allowed_core));
    }

    #[test]
    fn bfs_reports_disconnection() {
        let ft = FatTree::new(4, 1000.0);
        let a = ft.host(0, 0, 0);
        let b = ft.host(1, 0, 0);
        // Block all cores: cross-pod traffic is impossible.
        let cores: Vec<NodeId> = ft.core_switches().to_vec();
        let p = bfs_path(ft.topology(), a, b, |n| !cores.contains(&n), |_| true);
        assert!(p.is_none());
    }

    #[test]
    fn bfs_trivial_self_path() {
        let ft = FatTree::new(4, 1000.0);
        let a = ft.host(0, 0, 0);
        let p = bfs_path(ft.topology(), a, a, |_| true, |_| true).unwrap();
        assert_eq!(p.hop_count(), 0);
    }

    #[test]
    fn candidate_paths_avoid_duplicate_links() {
        let ft = FatTree::new(4, 1000.0);
        let a = ft.host(0, 0, 0);
        let b = ft.host(2, 1, 1);
        for p in candidate_paths(&ft, a, b) {
            let mut ls = p.links.clone();
            ls.sort();
            ls.dedup();
            assert_eq!(ls.len(), p.links.len(), "no repeated links");
        }
    }
}
