//! Leaf–spine (2-tier Clos) topology.
//!
//! A second fabric implementing [`crate::multipath::MultipathTopology`],
//! demonstrating the paper's claim that the consolidation model "is
//! independent of the network topology" (§IV-B): the same greedy/MILP
//! consolidators run unchanged on this fabric.
//!
//! Structure: `leaves` leaf switches, each hosting `hosts_per_leaf`
//! servers; `spines` spine switches; every leaf connects to every spine.
//! Host pairs on the same leaf have one 2-hop path; pairs on different
//! leaves have one 4-hop path per spine.

use crate::graph::{NodeId, NodeKind, Topology};
use crate::multipath::MultipathTopology;
use crate::paths::Path;

/// A leaf–spine fabric.
#[derive(Debug, Clone)]
pub struct LeafSpine {
    topo: Topology,
    hosts: Vec<NodeId>,
    leaves: Vec<NodeId>,
    spines: Vec<NodeId>,
    hosts_per_leaf: usize,
    /// `NodeId.0` → host ordinal in `hosts`, or `u32::MAX` for
    /// non-hosts; gives O(1) `host_leaf`.
    host_index: Vec<u32>,
}

impl LeafSpine {
    /// Builds a fabric with the given dimensions and uniform link capacity.
    ///
    /// # Panics
    /// Panics if any dimension is zero or the capacity is non-positive.
    pub fn new(leaves: usize, spines: usize, hosts_per_leaf: usize, capacity_mbps: f64) -> Self {
        assert!(
            leaves > 0 && spines > 0 && hosts_per_leaf > 0,
            "dimensions must be positive"
        );
        // Closed-form totals: spines + leaves + hosts nodes; one uplink
        // per host plus the full leaf×spine bipartite tier.
        let n_nodes = spines + leaves + leaves * hosts_per_leaf;
        let n_links = leaves * hosts_per_leaf + leaves * spines;
        let mut topo = Topology::with_capacity(n_nodes, n_links);
        let spine_ids: Vec<NodeId> = (0..spines)
            .map(|s| topo.add_node(NodeKind::CoreSwitch, format!("spine[{s}]")))
            .collect();
        let mut leaf_ids = Vec::with_capacity(leaves);
        let mut host_ids = Vec::with_capacity(leaves * hosts_per_leaf);
        for l in 0..leaves {
            let leaf = topo.add_node(NodeKind::EdgeSwitch, format!("leaf[{l}]"));
            leaf_ids.push(leaf);
            for h in 0..hosts_per_leaf {
                let host = topo.add_node(NodeKind::Host, format!("host[{l}][{h}]"));
                topo.add_link(host, leaf, capacity_mbps);
                host_ids.push(host);
            }
        }
        for &leaf in &leaf_ids {
            for &spine in &spine_ids {
                topo.add_link(leaf, spine, capacity_mbps);
            }
        }
        debug_assert_eq!(topo.num_nodes(), n_nodes, "leaf-spine node total");
        debug_assert_eq!(topo.num_links(), n_links, "leaf-spine link total");

        let mut host_index = vec![u32::MAX; topo.num_nodes()];
        for (ord, h) in host_ids.iter().enumerate() {
            host_index[h.0] = ord as u32;
        }

        LeafSpine {
            topo,
            hosts: host_ids,
            leaves: leaf_ids,
            spines: spine_ids,
            hosts_per_leaf,
            host_index,
        }
    }

    /// All leaf switches.
    pub fn leaves(&self) -> &[NodeId] {
        &self.leaves
    }

    /// All spine switches.
    pub fn spines(&self) -> &[NodeId] {
        &self.spines
    }

    /// Host by `(leaf, slot)`.
    pub fn host(&self, leaf: usize, slot: usize) -> NodeId {
        self.hosts[leaf * self.hosts_per_leaf + slot]
    }

    /// The leaf a host hangs off.
    pub fn host_leaf(&self, host: NodeId) -> NodeId {
        let ord = self.host_index.get(host.0).copied().unwrap_or(u32::MAX);
        assert_ne!(ord, u32::MAX, "not a host of this fabric");
        self.leaves[ord as usize / self.hosts_per_leaf]
    }

    fn link(&self, a: NodeId, b: NodeId) -> crate::graph::LinkId {
        self.topo
            .link_between(a, b)
            .expect("leaf-spine wiring guarantees this link")
    }
}

impl MultipathTopology for LeafSpine {
    fn topology(&self) -> &Topology {
        &self.topo
    }

    fn host_list(&self) -> &[NodeId] {
        &self.hosts
    }

    fn candidate_paths(&self, src: NodeId, dst: NodeId) -> Vec<Path> {
        assert_ne!(src, dst, "src and dst must differ");
        let sl = self.host_leaf(src);
        let dl = self.host_leaf(dst);
        if sl == dl {
            return vec![Path {
                nodes: vec![src, sl, dst],
                links: vec![self.link(src, sl), self.link(sl, dst)],
            }];
        }
        self.spines
            .iter()
            .map(|&sp| Path {
                nodes: vec![src, sl, sp, dl, dst],
                links: vec![
                    self.link(src, sl),
                    self.link(sl, sp),
                    self.link(sp, dl),
                    self.link(dl, dst),
                ],
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_counts() {
        let ls = LeafSpine::new(4, 3, 8, 1000.0);
        assert_eq!(ls.host_list().len(), 32);
        assert_eq!(ls.leaves().len(), 4);
        assert_eq!(ls.spines().len(), 3);
        // links: 32 host-leaf + 4×3 leaf-spine = 44.
        assert_eq!(ls.topology().num_links(), 44);
        assert_eq!(ls.topology().switches().len(), 7);
    }

    #[test]
    fn same_leaf_single_path() {
        let ls = LeafSpine::new(2, 2, 4, 1000.0);
        let paths = ls.candidate_paths(ls.host(0, 0), ls.host(0, 3));
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].hop_count(), 2);
        assert!(paths[0].is_consistent(ls.topology()));
    }

    #[test]
    fn cross_leaf_one_path_per_spine() {
        let ls = LeafSpine::new(3, 4, 2, 1000.0);
        let paths = ls.candidate_paths(ls.host(0, 0), ls.host(2, 1));
        assert_eq!(paths.len(), 4);
        let mut spines: Vec<NodeId> = paths.iter().map(|p| p.nodes[2]).collect();
        spines.sort();
        spines.dedup();
        assert_eq!(spines.len(), 4, "each path crosses a distinct spine");
        for p in &paths {
            assert_eq!(p.hop_count(), 4);
            assert!(p.is_consistent(ls.topology()));
        }
    }

    #[test]
    fn host_leaf_lookup() {
        let ls = LeafSpine::new(3, 2, 5, 1000.0);
        for l in 0..3 {
            for s in 0..5 {
                assert_eq!(ls.host_leaf(ls.host(l, s)), ls.leaves()[l]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dimension_rejected() {
        LeafSpine::new(0, 2, 2, 1000.0);
    }
}
