//! An undirected multigraph with typed nodes and capacitated links.

/// Handle to a node (host or switch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Handle to an undirected link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub usize);

/// The role of a node in the data center.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// A server (end host).
    Host,
    /// Top-of-rack / edge-level switch.
    EdgeSwitch,
    /// Aggregation-level switch.
    AggSwitch,
    /// Core-level switch.
    CoreSwitch,
}

impl NodeKind {
    /// `true` for any switch kind.
    #[inline]
    pub fn is_switch(self) -> bool {
        !matches!(self, NodeKind::Host)
    }
}

/// A node.
#[derive(Debug, Clone)]
pub struct Node {
    /// Role.
    pub kind: NodeKind,
    /// Human-readable name, e.g. `"agg[p1]\[1\]"`.
    pub name: String,
}

/// An undirected link with a capacity in Mbps.
#[derive(Debug, Clone)]
pub struct Link {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Capacity in Mbps (the paper uses 1 Gbps links = 1000 Mbps).
    pub capacity_mbps: f64,
}

impl Link {
    /// The endpoint opposite `n`.
    ///
    /// # Panics
    /// Panics if `n` is not an endpoint of this link.
    pub fn other(&self, n: NodeId) -> NodeId {
        if n == self.a {
            self.b
        } else if n == self.b {
            self.a
        } else {
            panic!("node {:?} is not an endpoint of this link", n)
        }
    }

    /// `true` iff `n` is an endpoint.
    #[inline]
    pub fn touches(&self, n: NodeId) -> bool {
        n == self.a || n == self.b
    }
}

/// Flat CSR adjacency: node `i`'s neighbors live in
/// `nbr[off[i]..off[i+1]]`. One contiguous buffer instead of a
/// `Vec<Vec<_>>` of per-node allocations, so neighbor walks at k=16–24
/// scale stay cache-resident. Per-node neighbor order equals link
/// insertion order, matching the old per-node push order exactly (BFS
/// and path enumeration stay bit-identical).
#[derive(Debug, Clone)]
struct CsrAdj {
    off: Vec<u32>,
    nbr: Vec<(NodeId, LinkId)>,
}

/// The topology: nodes, links, adjacency.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// Built lazily from `links` on first neighbor query; cleared by any
    /// mutation. A build from an immutable borrow is safe to race — both
    /// writers compute the same value.
    csr: std::sync::OnceLock<CsrAdj>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty topology with pre-sized node/link storage —
    /// builders that know their closed-form counts (fat-tree,
    /// leaf–spine) avoid every reallocation during construction.
    pub fn with_capacity(nodes: usize, links: usize) -> Self {
        Topology {
            nodes: Vec::with_capacity(nodes),
            links: Vec::with_capacity(links),
            csr: std::sync::OnceLock::new(),
        }
    }

    fn csr(&self) -> &CsrAdj {
        self.csr.get_or_init(|| {
            let n = self.nodes.len();
            let mut off = vec![0u32; n + 1];
            for l in &self.links {
                off[l.a.0 + 1] += 1;
                off[l.b.0 + 1] += 1;
            }
            for i in 0..n {
                off[i + 1] += off[i];
            }
            let mut cursor: Vec<u32> = off[..n].to_vec();
            let mut nbr = vec![(NodeId(0), LinkId(0)); 2 * self.links.len()];
            for (i, l) in self.links.iter().enumerate() {
                let id = LinkId(i);
                nbr[cursor[l.a.0] as usize] = (l.b, id);
                cursor[l.a.0] += 1;
                nbr[cursor[l.b.0] as usize] = (l.a, id);
                cursor[l.b.0] += 1;
            }
            CsrAdj { off, nbr }
        })
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, kind: NodeKind, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            kind,
            name: name.into(),
        });
        self.csr.take();
        id
    }

    /// Adds an undirected link and returns its id.
    ///
    /// # Panics
    /// Panics on unknown endpoints, self-loops, or non-positive capacity.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, capacity_mbps: f64) -> LinkId {
        assert!(
            a.0 < self.nodes.len() && b.0 < self.nodes.len(),
            "unknown endpoint"
        );
        assert_ne!(a, b, "self-loops are not allowed");
        assert!(capacity_mbps > 0.0, "capacity must be positive");
        let id = LinkId(self.links.len());
        self.links.push(Link {
            a,
            b,
            capacity_mbps,
        });
        self.csr.take();
        id
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    #[inline]
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Node data.
    #[inline]
    pub fn node(&self, n: NodeId) -> &Node {
        &self.nodes[n.0]
    }

    /// Link data.
    #[inline]
    pub fn link(&self, l: LinkId) -> &Link {
        &self.links[l.0]
    }

    /// All nodes with their ids.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId(i), n))
    }

    /// All links with their ids.
    pub fn links(&self) -> impl Iterator<Item = (LinkId, &Link)> {
        self.links.iter().enumerate().map(|(i, l)| (LinkId(i), l))
    }

    /// Neighbors of `n` as `(neighbor, connecting link)` pairs.
    ///
    /// Pairs appear in link-insertion order; the slice points into one
    /// flat CSR buffer shared by all nodes.
    #[inline]
    pub fn neighbors(&self, n: NodeId) -> &[(NodeId, LinkId)] {
        let csr = self.csr();
        &csr.nbr[csr.off[n.0] as usize..csr.off[n.0 + 1] as usize]
    }

    /// All host nodes.
    pub fn hosts(&self) -> Vec<NodeId> {
        self.nodes()
            .filter(|(_, n)| n.kind == NodeKind::Host)
            .map(|(id, _)| id)
            .collect()
    }

    /// All switch nodes.
    pub fn switches(&self) -> Vec<NodeId> {
        self.nodes()
            .filter(|(_, n)| n.kind.is_switch())
            .map(|(id, _)| id)
            .collect()
    }

    /// The link between `a` and `b`, if any (first match).
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        self.neighbors(a)
            .iter()
            .find(|(n, _)| *n == b)
            .map(|&(_, l)| l)
    }

    /// Degree of a node.
    #[inline]
    pub fn degree(&self, n: NodeId) -> usize {
        self.neighbors(n).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> (Topology, [NodeId; 3], [LinkId; 3]) {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Host, "a");
        let b = t.add_node(NodeKind::EdgeSwitch, "b");
        let c = t.add_node(NodeKind::CoreSwitch, "c");
        let ab = t.add_link(a, b, 1000.0);
        let bc = t.add_link(b, c, 1000.0);
        let ca = t.add_link(c, a, 1000.0);
        (t, [a, b, c], [ab, bc, ca])
    }

    #[test]
    fn construction_and_counts() {
        let (t, [a, b, c], _) = triangle();
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.num_links(), 3);
        assert_eq!(t.degree(a), 2);
        assert_eq!(t.node(b).kind, NodeKind::EdgeSwitch);
        assert_eq!(t.node(c).name, "c");
    }

    #[test]
    fn adjacency_is_symmetric() {
        let (t, [a, b, _], [ab, ..]) = triangle();
        assert!(t.neighbors(a).contains(&(b, ab)));
        assert!(t.neighbors(b).contains(&(a, ab)));
    }

    #[test]
    fn link_lookup_and_other() {
        let (t, [a, b, c], [ab, _, _]) = triangle();
        assert_eq!(t.link_between(a, b), Some(ab));
        assert_eq!(t.link_between(b, a), Some(ab));
        let l = t.link(ab);
        assert_eq!(l.other(a), b);
        assert_eq!(l.other(b), a);
        assert!(l.touches(a) && !l.touches(c));
    }

    #[test]
    fn hosts_and_switches_partition() {
        let (t, _, _) = triangle();
        assert_eq!(t.hosts().len(), 1);
        assert_eq!(t.switches().len(), 2);
    }

    #[test]
    fn csr_rebuilds_after_mutation() {
        let (mut t, [a, b, c], _) = triangle();
        // Force the CSR to materialize, then mutate.
        assert_eq!(t.degree(a), 2);
        let d = t.add_node(NodeKind::Host, "d");
        assert_eq!(t.degree(d), 0);
        let cd = t.add_link(c, d, 1000.0);
        assert!(t.neighbors(c).contains(&(d, cd)));
        assert!(t.neighbors(d).contains(&(c, cd)));
        assert_eq!(t.degree(c), 3);
        assert_eq!(t.degree(b), 2);
        assert_eq!(t.link_between(d, c), Some(cd));
    }

    #[test]
    fn neighbor_order_is_link_insertion_order() {
        let (t, [a, b, c], [ab, _, ca]) = triangle();
        // a's links were added in order ab (first), ca (last).
        assert_eq!(t.neighbors(a), &[(b, ab), (c, ca)]);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Host, "a");
        t.add_link(a, a, 1.0);
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_panics_for_non_endpoint() {
        let (t, [_, _, c], [ab, _, _]) = triangle();
        let _ = t.link(ab).other(c);
    }
}
