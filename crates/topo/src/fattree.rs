//! k-ary fat-tree builder.
//!
//! A k-ary fat-tree (k even) has `k` pods, each with `k/2` edge switches
//! and `k/2` aggregation switches; `(k/2)²` core switches; and `k/2` hosts
//! per edge switch — `k³/4` hosts in total. The paper's platform is the
//! `k = 4` instance: 16 hosts, 20 switches, 1 Gbps links (§V-A).
//!
//! Core switches are organized into `k/2` *groups*; group `j` contains
//! `k/2` switches, each connected to aggregation switch `j` of every pod.

use crate::graph::{LinkId, NodeId, NodeKind, Topology};

/// A k-ary fat-tree with index helpers on top of [`Topology`].
///
/// ```
/// use eprons_topo::FatTree;
/// let ft = FatTree::new(4, 1000.0); // the paper's platform
/// assert_eq!(ft.hosts().len(), 16);
/// assert_eq!(ft.topology().switches().len(), 20);
/// ```
#[derive(Debug, Clone)]
pub struct FatTree {
    k: usize,
    topo: Topology,
    hosts: Vec<NodeId>,
    edges: Vec<NodeId>,
    aggs: Vec<NodeId>,
    cores: Vec<NodeId>,
    /// `NodeId.0` → host ordinal in `hosts`, or `u32::MAX` for
    /// non-hosts. Makes `host_pod`/`host_edge` O(1) instead of a linear
    /// scan — at k=16 those run once per flow (~1M flows per scenario).
    host_index: Vec<u32>,
    /// `NodeId.0` → owning pod for hosts/edges/aggs, `u32::MAX` for
    /// cores. The O(1) ordinal-remapping table [`PodView`] and the pod-
    /// decomposed consolidator key their sub-problems on.
    ///
    /// [`PodView`]: crate::podview::PodView
    pod_index: Vec<u32>,
    /// `NodeId.0` → tier-local ordinal: aggs/edges get their in-pod index
    /// `j`/`i`, hosts their in-pod ordinal `i·(k/2)+slot`, cores their
    /// global `(group·(k/2)+member)` rank. Paired with `pod_index` this
    /// inverts every `edge(p,i)`/`agg(p,j)`/`core(g,m)` accessor in O(1).
    tier_local: Vec<u32>,
}

impl FatTree {
    /// Builds a k-ary fat-tree with the given uniform link capacity.
    ///
    /// # Panics
    /// Panics if `k` is odd or less than 2, or capacity is non-positive.
    pub fn new(k: usize, capacity_mbps: f64) -> Self {
        assert!(
            k >= 2 && k.is_multiple_of(2),
            "fat-tree arity must be even and >= 2"
        );
        let half = k / 2;
        // Closed-form totals: k³/4 hosts + k²/4 cores + k²/2 aggs +
        // k²/2 edges nodes; 3·k³/4 links (host–edge, edge–agg, agg–core
        // tiers contribute k³/4 each).
        let n_nodes = k * k * k / 4 + 5 * k * k / 4;
        let n_links = 3 * k * k * k / 4;
        let mut topo = Topology::with_capacity(n_nodes, n_links);

        // Core switches: group j in 0..half, member m in 0..half.
        let mut cores = Vec::with_capacity(half * half);
        for j in 0..half {
            for m in 0..half {
                cores.push(topo.add_node(NodeKind::CoreSwitch, format!("core[{j}][{m}]")));
            }
        }

        let mut aggs = Vec::with_capacity(k * half);
        let mut edges = Vec::with_capacity(k * half);
        let mut hosts = Vec::with_capacity(k * half * half);
        for p in 0..k {
            for j in 0..half {
                aggs.push(topo.add_node(NodeKind::AggSwitch, format!("agg[{p}][{j}]")));
            }
            for i in 0..half {
                edges.push(topo.add_node(NodeKind::EdgeSwitch, format!("edge[{p}][{i}]")));
            }
            for i in 0..half {
                for h in 0..half {
                    hosts.push(topo.add_node(NodeKind::Host, format!("host[{p}][{i}][{h}]")));
                }
            }
        }

        let ft_indices = |p: usize, j: usize| p * half + j;

        // Host <-> edge links.
        for p in 0..k {
            for i in 0..half {
                let e = edges[ft_indices(p, i)];
                for h in 0..half {
                    let host = hosts[(p * half + i) * half + h];
                    topo.add_link(host, e, capacity_mbps);
                }
            }
        }
        // Edge <-> agg links (full bipartite within a pod).
        for p in 0..k {
            for i in 0..half {
                let e = edges[ft_indices(p, i)];
                for j in 0..half {
                    let a = aggs[ft_indices(p, j)];
                    topo.add_link(e, a, capacity_mbps);
                }
            }
        }
        // Agg <-> core links: agg j of each pod connects to all cores in
        // group j.
        for p in 0..k {
            for j in 0..half {
                let a = aggs[ft_indices(p, j)];
                for m in 0..half {
                    let c = cores[j * half + m];
                    topo.add_link(a, c, capacity_mbps);
                }
            }
        }

        debug_assert_eq!(topo.num_nodes(), n_nodes, "fat-tree node total (k={k})");
        debug_assert_eq!(topo.num_links(), n_links, "fat-tree link total (k={k})");

        let mut host_index = vec![u32::MAX; topo.num_nodes()];
        for (ord, h) in hosts.iter().enumerate() {
            host_index[h.0] = ord as u32;
        }
        let mut pod_index = vec![u32::MAX; topo.num_nodes()];
        let mut tier_local = vec![u32::MAX; topo.num_nodes()];
        for (ord, c) in cores.iter().enumerate() {
            tier_local[c.0] = ord as u32;
        }
        for (ord, a) in aggs.iter().enumerate() {
            pod_index[a.0] = (ord / half) as u32;
            tier_local[a.0] = (ord % half) as u32;
        }
        for (ord, e) in edges.iter().enumerate() {
            pod_index[e.0] = (ord / half) as u32;
            tier_local[e.0] = (ord % half) as u32;
        }
        for (ord, h) in hosts.iter().enumerate() {
            pod_index[h.0] = (ord / (half * half)) as u32;
            tier_local[h.0] = (ord % (half * half)) as u32;
        }

        FatTree {
            k,
            topo,
            hosts,
            edges,
            aggs,
            cores,
            host_index,
            pod_index,
            tier_local,
        }
    }

    /// Ordinal of `host` in `hosts()`, i.e. its `(pod, edge, slot)` rank.
    fn host_ordinal(&self, host: NodeId) -> usize {
        let ord = self.host_index.get(host.0).copied().unwrap_or(u32::MAX);
        assert_ne!(ord, u32::MAX, "not a host of this fat-tree");
        ord as usize
    }

    /// The arity `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The underlying topology.
    #[inline]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// All hosts, ordered by `(pod, edge, slot)`.
    #[inline]
    pub fn hosts(&self) -> &[NodeId] {
        &self.hosts
    }

    /// All edge switches, ordered by `(pod, index)`.
    #[inline]
    pub fn edge_switches(&self) -> &[NodeId] {
        &self.edges
    }

    /// All aggregation switches, ordered by `(pod, index)`.
    #[inline]
    pub fn agg_switches(&self) -> &[NodeId] {
        &self.aggs
    }

    /// All core switches, ordered by `(group, member)`.
    #[inline]
    pub fn core_switches(&self) -> &[NodeId] {
        &self.cores
    }

    /// Host by `(pod, edge index, slot)`.
    pub fn host(&self, pod: usize, edge: usize, slot: usize) -> NodeId {
        let half = self.k / 2;
        self.hosts[(pod * half + edge) * half + slot]
    }

    /// Edge switch by `(pod, index)`.
    pub fn edge(&self, pod: usize, idx: usize) -> NodeId {
        self.edges[pod * (self.k / 2) + idx]
    }

    /// Aggregation switch by `(pod, index)`.
    pub fn agg(&self, pod: usize, idx: usize) -> NodeId {
        self.aggs[pod * (self.k / 2) + idx]
    }

    /// Core switch by `(group, member)`.
    pub fn core(&self, group: usize, member: usize) -> NodeId {
        self.cores[group * (self.k / 2) + member]
    }

    /// Pod of a host.
    pub fn host_pod(&self, host: NodeId) -> usize {
        let half = self.k / 2;
        self.host_ordinal(host) / (half * half)
    }

    /// Edge switch a host hangs off.
    pub fn host_edge(&self, host: NodeId) -> NodeId {
        self.edges[self.host_ordinal(host) / (self.k / 2)]
    }

    /// The uplink of a host (host↔edge link).
    pub fn host_uplink(&self, host: NodeId) -> LinkId {
        let e = self.host_edge(host);
        self.topo
            .link_between(host, e)
            .expect("fat-tree invariant: host connects to its edge switch")
    }

    /// Number of pods (= `k`).
    #[inline]
    pub fn num_pods(&self) -> usize {
        self.k
    }

    /// Owning pod of a host, edge, or aggregation switch; `None` for
    /// cores (they belong to the stitch layer, not a pod) and foreign
    /// ids.
    #[inline]
    pub fn pod_of(&self, n: NodeId) -> Option<usize> {
        match self.pod_index.get(n.0).copied() {
            Some(p) if p != u32::MAX => Some(p as usize),
            _ => None,
        }
    }

    /// Inverts [`FatTree::edge`]: the `(pod, index)` of an edge switch.
    pub fn edge_ordinal(&self, n: NodeId) -> Option<(usize, usize)> {
        if self.topo.node(n).kind == crate::graph::NodeKind::EdgeSwitch {
            Some((self.pod_index[n.0] as usize, self.tier_local[n.0] as usize))
        } else {
            None
        }
    }

    /// Inverts [`FatTree::agg`]: the `(pod, index)` of an agg switch.
    pub fn agg_ordinal(&self, n: NodeId) -> Option<(usize, usize)> {
        if self.topo.node(n).kind == crate::graph::NodeKind::AggSwitch {
            Some((self.pod_index[n.0] as usize, self.tier_local[n.0] as usize))
        } else {
            None
        }
    }

    /// Inverts [`FatTree::core`]: the `(group, member)` of a core switch.
    pub fn core_ordinal(&self, n: NodeId) -> Option<(usize, usize)> {
        if self.topo.node(n).kind == crate::graph::NodeKind::CoreSwitch {
            let r = self.tier_local[n.0] as usize;
            let half = self.k / 2;
            Some((r / half, r % half))
        } else {
            None
        }
    }

    /// Inverts [`FatTree::host`]: the `(pod, edge index, slot)` of a host.
    pub fn host_slot(&self, n: NodeId) -> Option<(usize, usize, usize)> {
        let ord = self.host_index.get(n.0).copied()?;
        if ord == u32::MAX {
            return None;
        }
        let half = self.k / 2;
        let local = self.tier_local[n.0] as usize;
        Some((self.pod_index[n.0] as usize, local / half, local % half))
    }

    /// A borrowed [`PodView`] over one pod's sub-fabric.
    ///
    /// # Panics
    /// Panics if `pod >= k`.
    pub fn pod_view(&self, pod: usize) -> crate::podview::PodView<'_> {
        crate::podview::PodView::new(self, pod)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_ary_counts_match_paper() {
        let ft = FatTree::new(4, 1000.0);
        assert_eq!(ft.hosts().len(), 16);
        assert_eq!(ft.edge_switches().len(), 8);
        assert_eq!(ft.agg_switches().len(), 8);
        assert_eq!(ft.core_switches().len(), 4);
        assert_eq!(ft.topology().switches().len(), 20);
        // links: 16 host-edge + 16 edge-agg + 16 agg-core = 48
        assert_eq!(ft.topology().num_links(), 48);
    }

    #[test]
    fn generic_k_counts() {
        for k in [2usize, 4, 6, 8] {
            let ft = FatTree::new(k, 1000.0);
            let half = k / 2;
            assert_eq!(ft.hosts().len(), k * half * half, "k={k}");
            assert_eq!(ft.core_switches().len(), half * half);
            assert_eq!(ft.agg_switches().len(), k * half);
            assert_eq!(ft.edge_switches().len(), k * half);
        }
    }

    #[test]
    fn closed_form_totals_up_to_k24() {
        // The builder pre-sizes from these formulas and debug-asserts
        // them; this re-checks in release builds across the scale
        // ladder, including the k=20/24 build-only bench points.
        for k in [4usize, 8, 12, 16, 20, 24] {
            let ft = FatTree::new(k, 1000.0);
            let t = ft.topology();
            assert_eq!(t.num_nodes(), k * k * k / 4 + 5 * k * k / 4, "nodes k={k}");
            assert_eq!(t.num_links(), 3 * k * k * k / 4, "links k={k}");
            assert_eq!(ft.hosts().len(), k * k * k / 4, "hosts k={k}");
        }
    }

    #[test]
    fn host_lookups_are_consistent_at_scale() {
        let ft = FatTree::new(8, 1000.0);
        let half = 4;
        for (ord, &h) in ft.hosts().iter().enumerate() {
            assert_eq!(ft.host_pod(h), ord / (half * half));
            assert_eq!(ft.host_edge(h), ft.edge_switches()[ord / half]);
        }
    }

    #[test]
    fn degrees_are_regular() {
        let ft = FatTree::new(4, 1000.0);
        let t = ft.topology();
        for &h in ft.hosts() {
            assert_eq!(t.degree(h), 1);
        }
        for &e in ft.edge_switches() {
            assert_eq!(t.degree(e), 4); // 2 hosts + 2 aggs
        }
        for &a in ft.agg_switches() {
            assert_eq!(t.degree(a), 4); // 2 edges + 2 cores
        }
        for &c in ft.core_switches() {
            assert_eq!(t.degree(c), 4); // one agg per pod
        }
    }

    #[test]
    fn core_group_wiring() {
        let ft = FatTree::new(4, 1000.0);
        let t = ft.topology();
        // Core (0, m) connects to agg(p, 0) for all pods p, never agg(p, 1).
        for m in 0..2 {
            let c = ft.core(0, m);
            for p in 0..4 {
                assert!(t.link_between(c, ft.agg(p, 0)).is_some());
                assert!(t.link_between(c, ft.agg(p, 1)).is_none());
            }
        }
    }

    #[test]
    fn pod_internal_wiring() {
        let ft = FatTree::new(4, 1000.0);
        let t = ft.topology();
        for p in 0..4 {
            for i in 0..2 {
                for j in 0..2 {
                    assert!(t.link_between(ft.edge(p, i), ft.agg(p, j)).is_some());
                }
                // No cross-pod edge-agg links.
                let q = (p + 1) % 4;
                assert!(t.link_between(ft.edge(p, i), ft.agg(q, 0)).is_none());
            }
        }
    }

    #[test]
    fn host_helpers_agree() {
        let ft = FatTree::new(4, 1000.0);
        let h = ft.host(2, 1, 0);
        assert_eq!(ft.host_pod(h), 2);
        assert_eq!(ft.host_edge(h), ft.edge(2, 1));
        let up = ft.host_uplink(h);
        assert!(ft.topology().link(up).touches(h));
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_arity_rejected() {
        let _ = FatTree::new(3, 1000.0);
    }
}
