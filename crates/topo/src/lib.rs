//! Data-center network topology substrate.
//!
//! The paper evaluates on a 4-ary fat-tree with 16 servers (§V-A). This
//! crate provides:
//!
//! * [`graph`] — an undirected multigraph with typed nodes (hosts and
//!   edge/aggregation/core switches) and capacitated links;
//! * [`fattree`] — the k-ary fat-tree builder and index helpers;
//! * [`paths`] — candidate-path enumeration between hosts (the ECMP path
//!   set the consolidation optimizer chooses from) and generic BFS routing
//!   restricted to an active subgraph;
//! * [`aggregation`] — the paper's Fig. 9 aggregation policies 0–3:
//!   progressively switching off core- and aggregation-level switches;
//! * [`multipath`] — the topology abstraction the consolidators run on
//!   (§IV-B: "our optimization model is independent of the network
//!   topology");
//! * [`leafspine`] — a second fabric (2-tier Clos) exercising that
//!   independence.

#![warn(missing_docs)]

pub mod aggregation;
pub mod fattree;
pub mod graph;
pub mod leafspine;
pub mod multipath;
pub mod paths;
pub mod podview;

pub use aggregation::AggregationLevel;
pub use fattree::FatTree;
pub use graph::{LinkId, NodeId, NodeKind, Topology};
pub use leafspine::LeafSpine;
pub use multipath::MultipathTopology;
pub use paths::{Path, PathRef};
pub use podview::PodView;
