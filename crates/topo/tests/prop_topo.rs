//! Property-based tests for fat-tree structure, path enumeration, and
//! aggregation presets (deterministic seeded cases via `eprons-proplite`).

use eprons_proplite::{cases, Gen};
use eprons_topo::paths::{bfs_path, candidate_paths};
use eprons_topo::{AggregationLevel, FatTree, NodeId};

fn arity(g: &mut Gen) -> usize {
    *g.choose(&[2usize, 4, 6, 8])
}

#[test]
fn fat_tree_counts() {
    cases(48, |g, case| {
        let k = arity(g);
        let ft = FatTree::new(k, 1000.0);
        let half = k / 2;
        assert_eq!(ft.hosts().len(), k * half * half, "case {case}");
        assert_eq!(ft.core_switches().len(), half * half, "case {case}");
        assert_eq!(ft.agg_switches().len(), k * half, "case {case}");
        assert_eq!(ft.edge_switches().len(), k * half, "case {case}");
        // Links: hosts + edge-agg (k·half·half) + agg-core (k·half·half).
        assert_eq!(
            ft.topology().num_links(),
            ft.hosts().len() + 2 * k * half * half,
            "case {case}"
        );
    });
}

#[test]
fn candidate_paths_are_consistent_and_right_sized() {
    cases(48, |g, case| {
        let k = arity(g);
        let sa = g.usize_in(0, 63);
        let sb = g.usize_in(0, 63);
        let ft = FatTree::new(k, 1000.0);
        let hosts = ft.hosts();
        let a = hosts[sa % hosts.len()];
        let b = hosts[sb % hosts.len()];
        if a == b {
            return;
        }
        let paths = candidate_paths(&ft, a, b);
        assert!(!paths.is_empty(), "case {case}");
        let half = k / 2;
        let expected = if ft.host_edge(a) == ft.host_edge(b) {
            1
        } else if ft.host_pod(a) == ft.host_pod(b) {
            half
        } else {
            half * half
        };
        assert_eq!(paths.len(), expected, "case {case}");
        for p in &paths {
            assert!(p.is_consistent(ft.topology()), "case {case}");
            assert_eq!(p.src(), a, "case {case}");
            assert_eq!(p.dst(), b, "case {case}");
            // Up/down paths never repeat a node.
            let mut nodes = p.nodes.clone();
            nodes.sort();
            nodes.dedup();
            assert_eq!(nodes.len(), p.nodes.len(), "case {case}");
        }
    });
}

#[test]
fn bfs_is_no_longer_than_candidates() {
    cases(48, |g, case| {
        let k = arity(g);
        let sa = g.usize_in(0, 63);
        let sb = g.usize_in(0, 63);
        let ft = FatTree::new(k, 1000.0);
        let hosts = ft.hosts();
        let a = hosts[sa % hosts.len()];
        let b = hosts[sb % hosts.len()];
        if a == b {
            return;
        }
        let best_candidate = candidate_paths(&ft, a, b)
            .iter()
            .map(|p| p.hop_count())
            .min()
            .unwrap();
        let bfs = bfs_path(ft.topology(), a, b, |_| true, |_| true).unwrap();
        assert!(bfs.hop_count() <= best_candidate, "case {case}");
        // Fat-tree minimal routes are exactly the candidates' lengths.
        assert_eq!(bfs.hop_count(), best_candidate, "case {case}");
    });
}

#[test]
fn aggregation_preserves_all_pairs_connectivity() {
    cases(24, |g, case| {
        let k = *g.choose(&[4usize, 6]);
        let level_idx = g.usize_in(0, 3);
        let ft = FatTree::new(k, 1000.0);
        let level = AggregationLevel::from_index(level_idx);
        let active = level.active_switches(&ft);
        let ok = |n: NodeId| !ft.topology().node(n).kind.is_switch() || active.contains(&n);
        let hosts = ft.hosts();
        // All pairs from host 0, plus a random cross slice.
        for &d in hosts.iter().skip(1) {
            assert!(
                bfs_path(ft.topology(), hosts[0], d, ok, |_| true).is_some(),
                "case {case}: {level:?} disconnected {d:?}"
            );
        }
    });
}

#[test]
fn aggregation_counts_shrink() {
    cases(24, |g, case| {
        let k = *g.choose(&[4usize, 6, 8]);
        let ft = FatTree::new(k, 1000.0);
        let mut prev = usize::MAX;
        for level in AggregationLevel::ALL {
            let n = level.active_switch_count(&ft);
            assert!(n <= prev, "case {case}");
            prev = n;
            // Edge switches always on.
            let active = level.active_switches(&ft);
            for &e in ft.edge_switches() {
                assert!(active.contains(&e), "case {case}");
            }
        }
    });
}

#[test]
fn host_helpers_agree_with_layout() {
    cases(48, |g, case| {
        let k = arity(g);
        let idx = g.usize_in(0, 63);
        let ft = FatTree::new(k, 1000.0);
        let hosts = ft.hosts();
        let h = hosts[idx % hosts.len()];
        let pod = ft.host_pod(h);
        assert!(pod < k, "case {case}");
        let edge = ft.host_edge(h);
        // The edge switch must be in the same pod position range.
        let pos = ft.edge_switches().iter().position(|&e| e == edge).unwrap();
        assert_eq!(pos / (k / 2), pod, "case {case}");
        // Uplink touches both.
        let up = ft.host_uplink(h);
        let link = ft.topology().link(up);
        assert!(link.touches(h) && link.touches(edge), "case {case}");
    });
}
