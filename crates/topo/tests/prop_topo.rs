//! Property-based tests for fat-tree structure, path enumeration, and
//! aggregation presets.

use eprons_topo::paths::{bfs_path, candidate_paths};
use eprons_topo::{AggregationLevel, FatTree, NodeId};
use proptest::prelude::*;

fn arity() -> impl Strategy<Value = usize> {
    prop_oneof![Just(2usize), Just(4), Just(6), Just(8)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fat_tree_counts(k in arity()) {
        let ft = FatTree::new(k, 1000.0);
        let half = k / 2;
        prop_assert_eq!(ft.hosts().len(), k * half * half);
        prop_assert_eq!(ft.core_switches().len(), half * half);
        prop_assert_eq!(ft.agg_switches().len(), k * half);
        prop_assert_eq!(ft.edge_switches().len(), k * half);
        // Links: hosts + edge-agg (k·half·half) + agg-core (k·half·half).
        prop_assert_eq!(
            ft.topology().num_links(),
            ft.hosts().len() + 2 * k * half * half
        );
    }

    #[test]
    fn candidate_paths_are_consistent_and_right_sized(
        k in arity(),
        sa in 0usize..64, sb in 0usize..64
    ) {
        let ft = FatTree::new(k, 1000.0);
        let hosts = ft.hosts();
        let a = hosts[sa % hosts.len()];
        let b = hosts[sb % hosts.len()];
        prop_assume!(a != b);
        let paths = candidate_paths(&ft, a, b);
        prop_assert!(!paths.is_empty());
        let half = k / 2;
        let expected = if ft.host_edge(a) == ft.host_edge(b) {
            1
        } else if ft.host_pod(a) == ft.host_pod(b) {
            half
        } else {
            half * half
        };
        prop_assert_eq!(paths.len(), expected);
        for p in &paths {
            prop_assert!(p.is_consistent(ft.topology()));
            prop_assert_eq!(p.src(), a);
            prop_assert_eq!(p.dst(), b);
            // Up/down paths never repeat a node.
            let mut nodes = p.nodes.clone();
            nodes.sort();
            nodes.dedup();
            prop_assert_eq!(nodes.len(), p.nodes.len());
        }
    }

    #[test]
    fn bfs_is_no_longer_than_candidates(k in arity(), sa in 0usize..64, sb in 0usize..64) {
        let ft = FatTree::new(k, 1000.0);
        let hosts = ft.hosts();
        let a = hosts[sa % hosts.len()];
        let b = hosts[sb % hosts.len()];
        prop_assume!(a != b);
        let best_candidate = candidate_paths(&ft, a, b)
            .iter()
            .map(|p| p.hop_count())
            .min()
            .unwrap();
        let bfs = bfs_path(ft.topology(), a, b, |_| true, |_| true).unwrap();
        prop_assert!(bfs.hop_count() <= best_candidate);
        // Fat-tree minimal routes are exactly the candidates' lengths.
        prop_assert_eq!(bfs.hop_count(), best_candidate);
    }

    #[test]
    fn aggregation_preserves_all_pairs_connectivity(
        k in prop_oneof![Just(4usize), Just(6)],
        level_idx in 0usize..4
    ) {
        let ft = FatTree::new(k, 1000.0);
        let level = AggregationLevel::from_index(level_idx);
        let active = level.active_switches(&ft);
        let ok = |n: NodeId| !ft.topology().node(n).kind.is_switch() || active.contains(&n);
        let hosts = ft.hosts();
        // All pairs from host 0, plus a random cross slice.
        for &d in hosts.iter().skip(1) {
            prop_assert!(
                bfs_path(ft.topology(), hosts[0], d, ok, |_| true).is_some(),
                "{level:?} disconnected {d:?}"
            );
        }
    }

    #[test]
    fn aggregation_counts_shrink(k in prop_oneof![Just(4usize), Just(6), Just(8)]) {
        let ft = FatTree::new(k, 1000.0);
        let mut prev = usize::MAX;
        for level in AggregationLevel::ALL {
            let n = level.active_switch_count(&ft);
            prop_assert!(n <= prev);
            prev = n;
            // Edge switches always on.
            let active = level.active_switches(&ft);
            for &e in ft.edge_switches() {
                prop_assert!(active.contains(&e));
            }
        }
    }

    #[test]
    fn host_helpers_agree_with_layout(k in arity(), idx in 0usize..64) {
        let ft = FatTree::new(k, 1000.0);
        let hosts = ft.hosts();
        let h = hosts[idx % hosts.len()];
        let pod = ft.host_pod(h);
        prop_assert!(pod < k);
        let edge = ft.host_edge(h);
        // The edge switch must be in the same pod position range.
        let pos = ft.edge_switches().iter().position(|&e| e == edge).unwrap();
        prop_assert_eq!(pos / (k / 2), pod);
        // Uplink touches both.
        let up = ft.host_uplink(h);
        let link = ft.topology().link(up);
        prop_assert!(link.touches(h) && link.touches(edge));
    }
}
