//! Linear-programming substrate for the EPRONS reproduction, built from
//! scratch.
//!
//! The paper formulates latency-aware traffic consolidation as a linear
//! program (eqs. 2–9) and solves it with CPLEX (§IV-B). Mature LP crates
//! being unavailable in this environment (see DESIGN.md), this crate
//! provides the solver substrate in-house:
//!
//! * [`model`] — a problem builder: variables with bounds (continuous or
//!   integer/binary), linear constraints, minimize/maximize objective.
//! * [`standard`] — conversion to standard form (`min c·x`, `Ax = b`,
//!   `x ≥ 0`) with slack/surplus variables and bound shifting.
//! * [`simplex`] — a dense two-phase primal simplex (flat row-major
//!   tableau) with Bland's anti-cycling rule: the solver of record for
//!   tiny models and the differential-test oracle.
//! * [`sparse`] — a sparse revised simplex over a CSC constraint matrix
//!   with a product-form LU basis and refactorization-on-threshold
//!   updates: the solver of record past the size cutoff (k≥8
//!   consolidation LPs are >99% zeros).
//! * [`milp`] — branch-and-bound over the integer variables (the paper's
//!   X/Y/Z on-off indicators are binary), with most-fractional branching
//!   and incumbent pruning.
//! * [`diagnostics`] — constraint-activity analysis (which capacities
//!   bind at the optimum).
//!
//! The paper's own data point is that the exact model is *slow* (42 min
//! for 3000 flows on CPLEX) and a greedy heuristic is used in deployment
//! — reproduced in `eprons-net::consolidate`. The sparse core exists so
//! the exact model stays solvable while the substrate scales to k=16–24
//! fat-trees; [`standard::LpEngine`] picks the core per model size.

#![warn(missing_docs)]

pub mod diagnostics;
pub mod milp;
pub mod model;
pub mod simplex;
pub mod sparse;
pub mod standard;

pub use milp::{solve_milp, solve_milp_with_incumbent, MilpOptions};
pub use model::{Cmp, Model, Sense, VarId};
pub use simplex::{Basis, SolveError, SolveStats};
pub use sparse::CscMatrix;
pub use standard::{LpEngine, Solution, Standardized};
