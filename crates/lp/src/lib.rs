//! Linear-programming substrate for the EPRONS reproduction, built from
//! scratch.
//!
//! The paper formulates latency-aware traffic consolidation as a linear
//! program (eqs. 2–9) and solves it with CPLEX (§IV-B). Mature LP crates
//! being unavailable in this environment (see DESIGN.md), this crate
//! provides the solver substrate in-house:
//!
//! * [`model`] — a problem builder: variables with bounds (continuous or
//!   integer/binary), linear constraints, minimize/maximize objective.
//! * [`standard`] — conversion to standard form (`min c·x`, `Ax = b`,
//!   `x ≥ 0`) with slack/surplus variables and bound shifting.
//! * [`simplex`] — a dense two-phase primal simplex with Bland's
//!   anti-cycling rule.
//! * [`milp`] — branch-and-bound over the integer variables (the paper's
//!   X/Y/Z on-off indicators are binary), with most-fractional branching
//!   and incumbent pruning.
//! * [`diagnostics`] — constraint-activity analysis (which capacities
//!   bind at the optimum).
//!
//! The solver is deliberately dense and simple: the paper's own data point
//! is that the exact model is *slow* (42 min for 3000 flows on CPLEX) and a
//! greedy heuristic is used in deployment — reproduced in
//! `eprons-net::consolidate`.

#![warn(missing_docs)]

pub mod diagnostics;
pub mod milp;
pub mod model;
pub mod simplex;
pub mod standard;

pub use milp::{solve_milp, solve_milp_with_incumbent, MilpOptions};
pub use model::{Cmp, Model, Sense, VarId};
pub use simplex::{Basis, SolveError, SolveStats};
pub use standard::{Solution, Standardized};
