//! Conversion of a [`Model`] to standard form and solution recovery.
//!
//! Standard form is `min c·y` subject to `A·y = b`, `y ≥ 0`, `b ≥ 0` —
//! the shape the two-phase simplex in [`crate::simplex`] consumes.
//! Variable bounds are handled by substitution:
//!
//! * finite lower bound `l`: `x = l + y` (and a row `y ≤ u − l` if the
//!   upper bound is finite too);
//! * only a finite upper bound `u`: `x = u − y` (mirrored);
//! * free: `x = y⁺ − y⁻`.

use crate::model::{Cmp, Model, Sense};
use crate::simplex::{self, Basis, SolveError, SolveStats};
use crate::sparse::{self, CscMatrix};
use eprons_obs as obs;

/// Which simplex core executes a [`Standardized`] solve.
///
/// The constraint matrices this crate sees are network-structured and
/// overwhelmingly sparse, but the dense tableau has lower constant
/// factors on tiny models and is the differential-test oracle; `Auto`
/// picks by matrix area so k=4-scale models keep their historical dense
/// path (and bit-exact results) while anything k≥8-sized runs on the
/// sparse revised simplex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LpEngine {
    /// Size-based choice: dense when `m·n ≤ 150_000`, sparse otherwise.
    #[default]
    Auto,
    /// Force the dense flat-tableau two-phase simplex.
    Dense,
    /// Force the sparse revised simplex (CSC + product-form LU).
    Sparse,
}

/// `Auto` runs dense at or below this `m·n`: every k=4-scale
/// consolidation model lands under it, the k=8 ladder and beyond above.
const DENSE_CUTOFF_AREA: usize = 150_000;

/// How an original variable maps onto standard-form column(s).
#[derive(Debug, Clone, Copy)]
enum VarMap {
    /// `x = offset + y[col]`
    Shifted { col: usize, offset: f64 },
    /// `x = offset − y[col]`
    Mirrored { col: usize, offset: f64 },
    /// `x = y[pos] − y[neg]`
    Split { pos: usize, neg: usize },
}

/// A solved LP/MILP.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Objective value in the *original* model's sense.
    pub objective: f64,
    /// Value of each original model variable, indexed by [`crate::VarId`].
    pub values: Vec<f64>,
}

impl Solution {
    /// Value of a variable.
    #[inline]
    pub fn value(&self, var: crate::VarId) -> f64 {
        self.values[var.index()]
    }
}

/// A standard-form program plus the mapping back to model variables.
pub struct Standardized {
    /// Constraint matrix, `m × n`, stored sparse (CSC). Constraint rows
    /// arrive as sparse term lists from [`Model`], so the matrix is
    /// assembled as triplets without ever materializing dense rows; the
    /// dense tableau path densifies on demand for small models only.
    a: CscMatrix,
    /// Right-hand sides, all non-negative.
    b: Vec<f64>,
    /// Objective coefficients (always minimize).
    c: Vec<f64>,
    /// Constant objective offset introduced by the substitutions.
    c0: f64,
    /// `true` if the original model maximized (objective negated here).
    negated: bool,
    /// Per-row: the column of a slack usable as the initial basis, if any.
    slack_basis: Vec<Option<usize>>,
    maps: Vec<VarMap>,
}

impl Standardized {
    /// Converts a model, ignoring integrality (the LP relaxation).
    pub fn from_model(model: &Model) -> Self {
        let negated = model.sense == Sense::Maximize;
        let sign = if negated { -1.0 } else { 1.0 };

        // Assign standard-form columns to variables.
        let mut maps = Vec::with_capacity(model.vars.len());
        let mut n = 0usize;
        // Rows for finite upper bounds of shifted variables: (col, ub-lb).
        let mut ub_rows: Vec<(usize, f64)> = Vec::new();
        for v in &model.vars {
            let (lb, ub) = (v.lower, v.upper);
            if lb.is_finite() {
                let col = n;
                n += 1;
                maps.push(VarMap::Shifted { col, offset: lb });
                if ub.is_finite() {
                    ub_rows.push((col, ub - lb));
                }
            } else if ub.is_finite() {
                let col = n;
                n += 1;
                maps.push(VarMap::Mirrored { col, offset: ub });
            } else {
                let pos = n;
                let neg = n + 1;
                n += 2;
                maps.push(VarMap::Split { pos, neg });
            }
        }

        // Objective in terms of standard-form columns.
        let mut c = vec![0.0; n];
        let mut c0 = 0.0;
        for (v, map) in model.vars.iter().zip(&maps) {
            let coeff = sign * v.obj;
            match *map {
                VarMap::Shifted { col, offset } => {
                    c[col] += coeff;
                    c0 += coeff * offset;
                }
                VarMap::Mirrored { col, offset } => {
                    c[col] -= coeff;
                    c0 += coeff * offset;
                }
                VarMap::Split { pos, neg } => {
                    c[pos] += coeff;
                    c[neg] -= coeff;
                }
            }
        }

        // Build rows: model constraints + upper-bound rows. Slacks are
        // appended after all structural columns.
        struct Row {
            coeffs: Vec<(usize, f64)>,
            cmp: Cmp,
            rhs: f64,
        }
        let mut rows: Vec<Row> = Vec::with_capacity(model.constraints.len() + ub_rows.len());
        for con in &model.constraints {
            let mut coeffs: Vec<(usize, f64)> = Vec::with_capacity(con.terms.len() + 1);
            let mut rhs = con.rhs;
            for &(vid, a) in &con.terms {
                match maps[vid.index()] {
                    VarMap::Shifted { col, offset } => {
                        coeffs.push((col, a));
                        rhs -= a * offset;
                    }
                    VarMap::Mirrored { col, offset } => {
                        coeffs.push((col, -a));
                        rhs -= a * offset;
                    }
                    VarMap::Split { pos, neg } => {
                        coeffs.push((pos, a));
                        coeffs.push((neg, -a));
                    }
                }
            }
            rows.push(Row {
                coeffs,
                cmp: con.cmp,
                rhs,
            });
        }
        for &(col, ub) in &ub_rows {
            rows.push(Row {
                coeffs: vec![(col, 1.0)],
                cmp: Cmp::Le,
                rhs: ub,
            });
        }

        // Allocate slack/surplus columns and emit the matrix as sparse
        // triplets with non-negative rhs.
        let m = rows.len();
        let mut slack_cols = 0usize;
        let mut nnz_guess = 0usize;
        for row in &rows {
            if row.cmp != Cmp::Eq {
                slack_cols += 1;
                nnz_guess += 1;
            }
            nnz_guess += row.coeffs.len();
        }
        let total = n + slack_cols;
        let mut trip: Vec<(u32, u32, f64)> = Vec::with_capacity(nnz_guess);
        let mut b = vec![0.0; m];
        let mut slack_basis = vec![None; m];
        let mut next_slack = n;
        for (i, row) in rows.iter().enumerate() {
            // Sign-normalize so rhs >= 0 (flips Le<->Ge).
            let (flip, rhs) = if row.rhs < 0.0 {
                (true, -row.rhs)
            } else {
                (false, row.rhs)
            };
            let cmp = match (row.cmp, flip) {
                (Cmp::Eq, _) => Cmp::Eq,
                (Cmp::Le, false) | (Cmp::Ge, true) => Cmp::Le,
                (Cmp::Ge, false) | (Cmp::Le, true) => Cmp::Ge,
            };
            let s = if flip { -1.0 } else { 1.0 };
            for &(col, coef) in &row.coeffs {
                trip.push((i as u32, col as u32, s * coef));
            }
            b[i] = rhs;
            match cmp {
                Cmp::Le => {
                    trip.push((i as u32, next_slack as u32, 1.0));
                    slack_basis[i] = Some(next_slack);
                    next_slack += 1;
                }
                Cmp::Ge => {
                    trip.push((i as u32, next_slack as u32, -1.0));
                    next_slack += 1;
                }
                Cmp::Eq => {}
            }
        }
        let a = CscMatrix::from_triplets(m, total, trip);

        // Slack columns carry zero cost.
        c.resize(total, 0.0);

        Standardized {
            a,
            b,
            c,
            c0,
            negated,
            slack_basis,
            maps,
        }
    }

    /// Number of structural + slack columns.
    pub fn num_cols(&self) -> usize {
        self.c.len()
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.a.num_rows()
    }

    /// Stored nonzeros of the constraint matrix.
    pub fn nnz(&self) -> usize {
        self.a.nnz()
    }

    /// The engine `Auto` resolves to for this model's dimensions.
    pub fn auto_engine(&self) -> LpEngine {
        if self.num_rows() * self.num_cols() <= DENSE_CUTOFF_AREA {
            LpEngine::Dense
        } else {
            LpEngine::Sparse
        }
    }

    /// Solves the standard-form program with the two-phase simplex and maps
    /// the solution back onto the original model's variables.
    pub fn solve(&self) -> Result<Solution, SolveError> {
        self.solve_with_stats().map(|(sol, _)| sol)
    }

    /// [`Standardized::solve`], additionally reporting simplex work
    /// counters.
    ///
    /// # Errors
    /// Same failure modes as [`Standardized::solve`].
    pub fn solve_with_stats(&self) -> Result<(Solution, SolveStats), SolveError> {
        self.solve_warm(None).map(|(sol, stats, _)| (sol, stats))
    }

    /// [`Standardized::solve_with_stats`] with an optional warm-start
    /// [`Basis`], additionally returning the final basis so callers can
    /// chain solves across structurally-identical models (same variables
    /// and constraints, different RHS / objective coefficients — the
    /// relationship between adjacent K-ladder candidates).
    ///
    /// # Errors
    /// Same failure modes as [`Standardized::solve`], plus
    /// [`SolveError::BasisMismatch`] when `warm` comes from a model with
    /// different standard-form dimensions.
    pub fn solve_warm(
        &self,
        warm: Option<&Basis>,
    ) -> Result<(Solution, SolveStats, Basis), SolveError> {
        self.solve_warm_with(warm, LpEngine::Auto)
    }

    /// [`Standardized::solve_warm`] with an explicit engine choice.
    /// `Auto` (the default everywhere else) picks dense for tiny models
    /// and the sparse revised simplex past the size cutoff; forcing
    /// `Dense`/`Sparse` is how the differential tests and the
    /// `scale_ladder` bench compare the two cores on identical input.
    ///
    /// # Errors
    /// Same failure modes as [`Standardized::solve_warm`].
    pub fn solve_warm_with(
        &self,
        warm: Option<&Basis>,
        engine: LpEngine,
    ) -> Result<(Solution, SolveStats, Basis), SolveError> {
        let engine = match engine {
            LpEngine::Auto => self.auto_engine(),
            e => e,
        };
        let (y, stats, basis) = match engine {
            LpEngine::Sparse => {
                sparse::solve_counted_warm_csc(&self.a, &self.b, &self.c, &self.slack_basis, warm)?
            }
            _ => simplex::solve_counted_warm_flat(
                &self.a.to_row_major(),
                self.num_rows(),
                self.num_cols(),
                &self.b,
                &self.c,
                &self.slack_basis,
                warm,
            )?,
        };
        if obs::enabled() {
            let reg = obs::registry();
            reg.counter("lp.pivots").add(stats.iterations);
            if stats.warm_started {
                reg.counter("lp.warm_start_hits").inc();
            } else if warm.is_some() {
                reg.counter("lp.warm_start_misses").inc();
            }
            if engine == LpEngine::Sparse {
                reg.counter("lp.sparse.solves").inc();
                reg.counter("lp.sparse.nnz").add(self.nnz() as u64);
                reg.counter("lp.sparse.refactorizations")
                    .add(stats.refactorizations);
            }
        }
        Ok((self.recover(&y), stats, basis))
    }

    /// Maps a standard-form point back onto the original model variables.
    fn recover(&self, y: &[f64]) -> Solution {
        let mut values = vec![0.0; self.maps.len()];
        for (i, map) in self.maps.iter().enumerate() {
            values[i] = match *map {
                VarMap::Shifted { col, offset } => offset + y[col],
                VarMap::Mirrored { col, offset } => offset - y[col],
                VarMap::Split { pos, neg } => y[pos] - y[neg],
            };
        }
        let mut objective = self.c0 + self.c.iter().zip(y).map(|(c, y)| c * y).sum::<f64>();
        if self.negated {
            objective = -objective;
        }
        Solution { objective, values }
    }
}

/// Solves the LP relaxation of `model` (integrality ignored).
///
/// With telemetry enabled this times the solve (`lp.solve_s`), counts
/// successes/failures, and journals an `LpSolve` event carrying pivot
/// counts and the binding constraints of the optimum.
pub fn solve_lp(model: &Model) -> Result<Solution, SolveError> {
    let std_form = Standardized::from_model(model);
    if !obs::enabled() {
        return std_form.solve();
    }
    let _t = obs::Timer::scoped("lp.solve_s");
    let mut sp = obs::Span::enter("lp.solve");
    match std_form.solve_with_stats() {
        Ok((sol, stats)) => {
            sp.note(format!(
                "rows={} cols={} pivots={} warm={}",
                std_form.num_rows(),
                std_form.num_cols(),
                stats.iterations,
                stats.warm_started
            ));
            obs::registry().counter("lp.solve.ok").inc();
            obs::record(obs::Event::LpSolve {
                rows: std_form.num_rows() as u64,
                cols: std_form.num_cols() as u64,
                iters: stats.iterations,
                binding_constraints: crate::diagnostics::binding_constraints(model, &sol, 1e-7),
            });
            Ok(sol)
        }
        Err(e) => {
            sp.note(format!("error={e}"));
            obs::registry().counter("lp.solve.err").inc();
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Cmp, Model, Sense};

    #[test]
    fn simple_minimization() {
        // min x + y  s.t. x + y >= 2, x >= 0, y >= 0  → obj 2
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 1.0);
        m.add_constraint("c", vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 2.0);
        let sol = solve_lp(&m).unwrap();
        assert!((sol.objective - 2.0).abs() < 1e-9);
        assert!(m.is_feasible(&sol.values, 1e-7));
    }

    #[test]
    fn simple_maximization() {
        // max 3x + 2y  s.t. x + y <= 4, x + 3y <= 6  → x=4, y=0, obj 12
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY, 3.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 2.0);
        m.add_constraint("c1", vec![(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
        m.add_constraint("c2", vec![(x, 1.0), (y, 3.0)], Cmp::Le, 6.0);
        let sol = solve_lp(&m).unwrap();
        assert!((sol.objective - 12.0).abs() < 1e-9);
        assert!((sol.value(x) - 4.0).abs() < 1e-9);
        assert!(sol.value(y).abs() < 1e-9);
    }

    #[test]
    fn classic_textbook_lp() {
        // max 5x + 4y s.t. 6x + 4y <= 24, x + 2y <= 6 → x=3, y=1.5, obj 21
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY, 5.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 4.0);
        m.add_constraint("c1", vec![(x, 6.0), (y, 4.0)], Cmp::Le, 24.0);
        m.add_constraint("c2", vec![(x, 1.0), (y, 2.0)], Cmp::Le, 6.0);
        let sol = solve_lp(&m).unwrap();
        assert!((sol.objective - 21.0).abs() < 1e-9);
        assert!((sol.value(x) - 3.0).abs() < 1e-9);
        assert!((sol.value(y) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn equality_constraints() {
        // min 2x + 3y s.t. x + y = 10, x - y = 2 → x=6, y=4, obj 24
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, f64::INFINITY, 2.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 3.0);
        m.add_constraint("sum", vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 10.0);
        m.add_constraint("diff", vec![(x, 1.0), (y, -1.0)], Cmp::Eq, 2.0);
        let sol = solve_lp(&m).unwrap();
        assert!((sol.value(x) - 6.0).abs() < 1e-9);
        assert!((sol.value(y) - 4.0).abs() < 1e-9);
        assert!((sol.objective - 24.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, 1.0, 1.0);
        m.add_constraint("c", vec![(x, 1.0)], Cmp::Ge, 5.0);
        assert!(matches!(solve_lp(&m), Err(SolveError::Infeasible)));
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY, 1.0);
        m.add_constraint("c", vec![(x, 1.0)], Cmp::Ge, 0.0);
        assert!(matches!(solve_lp(&m), Err(SolveError::Unbounded)));
    }

    #[test]
    fn bounds_are_respected() {
        // min -x with 0 <= x <= 7 → x = 7
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, 7.0, -1.0);
        let sol = solve_lp(&m).unwrap();
        assert!((sol.value(x) - 7.0).abs() < 1e-9);
        assert!((sol.objective + 7.0).abs() < 1e-9);
    }

    #[test]
    fn shifted_lower_bound() {
        // min x with x >= 3 → x = 3
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 3.0, f64::INFINITY, 1.0);
        let sol = solve_lp(&m).unwrap();
        assert!((sol.value(x) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn mirrored_variable_upper_bound_only() {
        // max x with x <= 5 (no lower bound) → x = 5
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", f64::NEG_INFINITY, 5.0, 1.0);
        let sol = solve_lp(&m).unwrap();
        assert!((sol.value(x) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn free_variable_split() {
        // min |shape|: min x s.t. x >= -4 is unbounded-free? Use:
        // min x s.t. x + y = 0, y <= 3, y >= 0, x free → x = -3.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", f64::NEG_INFINITY, f64::INFINITY, 1.0);
        let y = m.add_var("y", 0.0, 3.0, 0.0);
        m.add_constraint("c", vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 0.0);
        let sol = solve_lp(&m).unwrap();
        assert!((sol.value(x) + 3.0).abs() < 1e-9);
    }

    #[test]
    fn negative_rhs_rows_normalize() {
        // min x + y s.t. -x - y <= -2  (i.e. x + y >= 2)
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 1.0);
        m.add_constraint("c", vec![(x, -1.0), (y, -1.0)], Cmp::Le, -2.0);
        let sol = solve_lp(&m).unwrap();
        assert!((sol.objective - 2.0).abs() < 1e-9);
    }

    #[test]
    fn warm_chain_matches_cold_solves() {
        // Two structurally identical models differing only in RHS — the
        // K-ladder relationship — chained through one basis.
        let build = |cap: f64| {
            let mut m = Model::new(Sense::Minimize);
            let x = m.add_var("x", 0.0, f64::INFINITY, 2.0);
            let y = m.add_var("y", 0.0, f64::INFINITY, 3.0);
            m.add_constraint("sum", vec![(x, 1.0), (y, 1.0)], Cmp::Ge, cap);
            m.add_constraint("cap", vec![(x, 1.0)], Cmp::Le, cap * 0.75);
            m
        };
        let first = Standardized::from_model(&build(8.0));
        let (sol1, _, basis) = first.solve_warm(None).unwrap();
        let second = Standardized::from_model(&build(10.0));
        let (warm_sol, stats, _) = second.solve_warm(Some(&basis)).unwrap();
        assert!(stats.warm_started, "identical structure should warm-start");
        let (cold_sol, _) = second.solve_with_stats().unwrap();
        assert!((warm_sol.objective - cold_sol.objective).abs() < 1e-9);
        for (w, c) in warm_sol.values.iter().zip(&cold_sol.values) {
            assert!((w - c).abs() < 1e-9);
        }
        assert!(sol1.objective < cold_sol.objective);
    }

    #[test]
    fn structural_change_rejects_stale_basis() {
        let mut m1 = Model::new(Sense::Minimize);
        let x = m1.add_var("x", 0.0, f64::INFINITY, 1.0);
        m1.add_constraint("c", vec![(x, 1.0)], Cmp::Ge, 2.0);
        let (_, _, basis) = Standardized::from_model(&m1).solve_warm(None).unwrap();
        // Add a variable: the standard-form shape changes.
        let mut m2 = Model::new(Sense::Minimize);
        let x2 = m2.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y2 = m2.add_var("y", 0.0, f64::INFINITY, 1.0);
        m2.add_constraint("c", vec![(x2, 1.0), (y2, 1.0)], Cmp::Ge, 2.0);
        let err = Standardized::from_model(&m2)
            .solve_warm(Some(&basis))
            .unwrap_err();
        assert_eq!(err, SolveError::BasisMismatch);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // A classically degenerate problem (multiple ties in ratio test).
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY, 0.75);
        let y = m.add_var("y", 0.0, f64::INFINITY, -150.0);
        let z = m.add_var("z", 0.0, f64::INFINITY, 0.02);
        let w = m.add_var("w", 0.0, f64::INFINITY, -6.0);
        m.add_constraint(
            "r1",
            vec![(x, 0.25), (y, -60.0), (z, -0.04), (w, 9.0)],
            Cmp::Le,
            0.0,
        );
        m.add_constraint(
            "r2",
            vec![(x, 0.5), (y, -90.0), (z, -0.02), (w, 3.0)],
            Cmp::Le,
            0.0,
        );
        m.add_constraint("r3", vec![(z, 1.0)], Cmp::Le, 1.0);
        // Beale's cycling example; optimal objective is 0.05.
        let sol = solve_lp(&m).unwrap();
        assert!((sol.objective - 0.05).abs() < 1e-9);
    }
}
