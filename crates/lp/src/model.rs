//! Linear/mixed-integer program builder.
//!
//! The network crate builds the paper's consolidation model (eqs. 2–9) with
//! this API: continuous flow variables `f_i(u,v)`, binary on/off indicators
//! `X`, `Y`, `Z`, capacity and flow-conservation constraints, and a power
//! objective.

use std::fmt;

/// Handle to a model variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// The variable's index in the model (also its index in
    /// [`crate::Solution::values`]).
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Minimize the objective (the paper's eq. 2 minimizes total power).
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Constraint comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `Σ aᵢxᵢ ≤ rhs`
    Le,
    /// `Σ aᵢxᵢ ≥ rhs`
    Ge,
    /// `Σ aᵢxᵢ = rhs`
    Eq,
}

/// A model variable.
#[derive(Debug, Clone)]
pub struct Variable {
    /// Human-readable name (diagnostics only).
    pub name: String,
    /// Lower bound (may be `f64::NEG_INFINITY`).
    pub lower: f64,
    /// Upper bound (may be `f64::INFINITY`).
    pub upper: f64,
    /// Objective coefficient.
    pub obj: f64,
    /// Whether branch-and-bound must drive this variable integral.
    pub integer: bool,
}

/// A linear constraint `Σ aᵢxᵢ (≤|≥|=) rhs`.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Human-readable name (diagnostics only).
    pub name: String,
    /// Sparse terms `(variable, coefficient)`.
    pub terms: Vec<(VarId, f64)>,
    /// Comparison operator.
    pub cmp: Cmp,
    /// Right-hand side.
    pub rhs: f64,
}

/// A linear or mixed-integer program.
///
/// ```
/// use eprons_lp::{Cmp, Model, Sense, solve_milp, MilpOptions};
/// // max 5x + 4y s.t. 6x + 4y <= 24, x + 2y <= 6, x/y integer.
/// let mut m = Model::new(Sense::Maximize);
/// let x = m.add_int_var("x", 0.0, f64::INFINITY, 5.0);
/// let y = m.add_int_var("y", 0.0, f64::INFINITY, 4.0);
/// m.add_constraint("c1", vec![(x, 6.0), (y, 4.0)], Cmp::Le, 24.0);
/// m.add_constraint("c2", vec![(x, 1.0), (y, 2.0)], Cmp::Le, 6.0);
/// let sol = solve_milp(&m, &MilpOptions::default()).unwrap();
/// assert!((sol.objective - 20.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct Model {
    pub(crate) sense: Sense,
    pub(crate) vars: Vec<Variable>,
    pub(crate) constraints: Vec<Constraint>,
}

impl Model {
    /// Creates an empty model with the given optimization direction.
    pub fn new(sense: Sense) -> Self {
        Model {
            sense,
            vars: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// The optimization direction.
    #[inline]
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Number of variables.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    #[inline]
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// The variables.
    #[inline]
    pub fn vars(&self) -> &[Variable] {
        &self.vars
    }

    /// The constraints.
    #[inline]
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Adds a continuous variable with bounds `[lower, upper]` and
    /// objective coefficient `obj`.
    ///
    /// # Panics
    /// Panics if `lower > upper` or any value is NaN.
    pub fn add_var(&mut self, name: impl Into<String>, lower: f64, upper: f64, obj: f64) -> VarId {
        self.push_var(name.into(), lower, upper, obj, false)
    }

    /// Adds an integer variable with bounds `[lower, upper]`.
    ///
    /// # Panics
    /// Panics if `lower > upper` or any value is NaN.
    pub fn add_int_var(
        &mut self,
        name: impl Into<String>,
        lower: f64,
        upper: f64,
        obj: f64,
    ) -> VarId {
        self.push_var(name.into(), lower, upper, obj, true)
    }

    /// Adds a binary (0/1) variable — the paper's switch/link/path on-off
    /// indicators.
    pub fn add_binary(&mut self, name: impl Into<String>, obj: f64) -> VarId {
        self.push_var(name.into(), 0.0, 1.0, obj, true)
    }

    fn push_var(&mut self, name: String, lower: f64, upper: f64, obj: f64, integer: bool) -> VarId {
        assert!(
            !lower.is_nan() && !upper.is_nan() && !obj.is_nan(),
            "NaN in variable"
        );
        assert!(
            lower <= upper,
            "variable {name}: lower bound exceeds upper bound"
        );
        let id = VarId(self.vars.len());
        self.vars.push(Variable {
            name,
            lower,
            upper,
            obj,
            integer,
        });
        id
    }

    /// Adds a constraint. Terms referencing the same variable repeatedly
    /// are summed.
    ///
    /// # Panics
    /// Panics if a term references an unknown variable or contains NaN.
    pub fn add_constraint(
        &mut self,
        name: impl Into<String>,
        terms: Vec<(VarId, f64)>,
        cmp: Cmp,
        rhs: f64,
    ) {
        let name = name.into();
        assert!(!rhs.is_nan(), "constraint {name}: NaN rhs");
        for &(v, c) in &terms {
            assert!(v.0 < self.vars.len(), "constraint {name}: unknown variable");
            assert!(!c.is_nan(), "constraint {name}: NaN coefficient");
        }
        // Merge duplicate variables so the standard-form matrix is clean.
        let mut merged: Vec<(VarId, f64)> = Vec::with_capacity(terms.len());
        for (v, c) in terms {
            if let Some(slot) = merged.iter_mut().find(|(w, _)| *w == v) {
                slot.1 += c;
            } else {
                merged.push((v, c));
            }
        }
        self.constraints.push(Constraint {
            name,
            terms: merged,
            cmp,
            rhs,
        });
    }

    /// Overrides the bounds of an existing variable (used by
    /// branch-and-bound to impose branching decisions).
    ///
    /// # Panics
    /// Panics if `lower > upper`.
    pub fn set_bounds(&mut self, var: VarId, lower: f64, upper: f64) {
        assert!(lower <= upper, "set_bounds: lower exceeds upper");
        self.vars[var.0].lower = lower;
        self.vars[var.0].upper = upper;
    }

    /// Evaluates the objective at a point (ignores feasibility).
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.vars.iter().zip(x).map(|(v, &xi)| v.obj * xi).sum()
    }

    /// Checks whether `x` satisfies every constraint and bound to within
    /// `tol`. Useful in tests and for validating heuristic solutions.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.vars.len() {
            return false;
        }
        for (v, &xi) in self.vars.iter().zip(x) {
            if xi < v.lower - tol || xi > v.upper + tol {
                return false;
            }
            if v.integer && (xi - xi.round()).abs() > tol {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.terms.iter().map(|&(v, a)| a * x[v.0]).sum();
            let ok = match c.cmp {
                Cmp::Le => lhs <= c.rhs + tol,
                Cmp::Ge => lhs >= c.rhs - tol,
                Cmp::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} {} vars, {} constraints",
            match self.sense {
                Sense::Minimize => "minimize:",
                Sense::Maximize => "maximize:",
            },
            self.vars.len(),
            self.constraints.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_basics() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, 10.0, 1.0);
        let y = m.add_binary("y", 5.0);
        m.add_constraint("c", vec![(x, 1.0), (y, 2.0)], Cmp::Le, 8.0);
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.num_constraints(), 1);
        assert!(m.vars()[y.index()].integer);
        assert_eq!(m.vars()[y.index()].upper, 1.0);
    }

    #[test]
    fn duplicate_terms_are_merged() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, 1.0, 0.0);
        m.add_constraint("c", vec![(x, 1.0), (x, 2.0)], Cmp::Le, 3.0);
        assert_eq!(m.constraints()[0].terms.len(), 1);
        assert_eq!(m.constraints()[0].terms[0].1, 3.0);
    }

    #[test]
    fn feasibility_check() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, 5.0, 1.0);
        let y = m.add_binary("y", 1.0);
        m.add_constraint("c1", vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 2.0);
        assert!(m.is_feasible(&[2.0, 0.0], 1e-9));
        assert!(m.is_feasible(&[1.0, 1.0], 1e-9));
        assert!(!m.is_feasible(&[1.0, 0.0], 1e-9)); // violates c1
        assert!(!m.is_feasible(&[6.0, 0.0], 1e-9)); // violates bound
        assert!(!m.is_feasible(&[2.0, 0.5], 1e-9)); // y not integral
        assert!(!m.is_feasible(&[2.0], 1e-9)); // wrong arity
    }

    #[test]
    fn objective_value_eval() {
        let mut m = Model::new(Sense::Minimize);
        let _x = m.add_var("x", 0.0, 1.0, 3.0);
        let _y = m.add_var("y", 0.0, 1.0, -1.0);
        assert_eq!(m.objective_value(&[2.0, 4.0]), 2.0);
    }

    #[test]
    #[should_panic(expected = "lower bound exceeds")]
    fn invalid_bounds_panic() {
        let mut m = Model::new(Sense::Minimize);
        m.add_var("x", 1.0, 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn unknown_variable_panics() {
        let mut m = Model::new(Sense::Minimize);
        m.add_constraint("c", vec![(VarId(3), 1.0)], Cmp::Le, 0.0);
    }
}
