//! Branch-and-bound for mixed-integer programs.
//!
//! The consolidation model's on/off indicators (`X` links, `Y` switches,
//! `Z`/path selectors — paper eqs. 7–9) are binary. This module wraps the
//! LP relaxation from [`crate::standard`] in a best-first branch-and-bound:
//! most-fractional branching, incumbent pruning, and a node budget.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::model::{Model, Sense, VarId};
use crate::simplex::SolveError;
use crate::standard::{solve_lp, Solution};

/// Branch-and-bound tuning knobs.
#[derive(Debug, Clone)]
pub struct MilpOptions {
    /// Maximum number of LP relaxations to solve before giving up. When the
    /// budget runs out with an incumbent in hand, the incumbent is returned
    /// (it is feasible, possibly sub-optimal) — mirroring how the paper
    /// falls back to a heuristic when CPLEX is too slow.
    pub max_nodes: usize,
    /// Tolerance within which a relaxation value counts as integral.
    pub int_tol: f64,
    /// Relative optimality gap at which search stops early.
    pub rel_gap: f64,
}

impl Default for MilpOptions {
    fn default() -> Self {
        MilpOptions {
            max_nodes: 20_000,
            int_tol: 1e-6,
            rel_gap: 1e-9,
        }
    }
}

/// A search node: bound overrides accumulated along the branch, plus the
/// parent relaxation bound used for best-first ordering.
struct Node {
    overrides: Vec<(VarId, f64, f64)>,
    bound_key: f64, // minimization key (lower is more promising)
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound_key == other.bound_key
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; we want the smallest key first.
        other
            .bound_key
            .partial_cmp(&self.bound_key)
            .unwrap_or(Ordering::Equal)
    }
}

/// Solves a mixed-integer program by branch-and-bound.
///
/// Returns the optimal (or, on node-budget exhaustion, the best incumbent)
/// solution. Errors mirror the LP relaxation: `Infeasible` when no integral
/// point exists, `Unbounded` when the relaxation is unbounded at the root,
/// `IterationLimit` when the budget is exhausted without any incumbent.
pub fn solve_milp(model: &Model, opts: &MilpOptions) -> Result<Solution, SolveError> {
    solve_milp_with_incumbent(model, opts, None)
}

/// [`solve_milp`] seeded with an initial integer incumbent.
///
/// `incumbent_hint` is a candidate assignment for *all* model variables —
/// typically the previous K candidate's feasible consolidation, whose
/// structure matches because adjacent candidates share the constraint
/// matrix. When the hint (after snapping integer variables) is feasible,
/// branch-and-bound starts with its objective as the incumbent bound and
/// prunes dominated subtrees immediately; when it is infeasible (or the
/// wrong arity) the solve silently proceeds exactly like the cold path.
///
/// Note that with alternate optima the returned assignment may differ
/// from a cold solve's (the injected incumbent wins ties); the objective
/// value never does.
///
/// Node relaxations deliberately stay on the cold [`solve_lp`] path:
/// branching tightens variable *bounds*, which almost always breaks the
/// parent basis's primal feasibility, so a primal-simplex basis chain
/// inside the tree just pays injection overhead and falls back (a dual
/// simplex would be needed to absorb bound cuts). Warm-basis chaining
/// pays off *across* adjacent K-ladder models instead — see
/// [`crate::standard::Standardized::solve_warm`].
pub fn solve_milp_with_incumbent(
    model: &Model,
    opts: &MilpOptions,
    incumbent_hint: Option<&[f64]>,
) -> Result<Solution, SolveError> {
    // Minimization key: +objective for Minimize, -objective for Maximize.
    let key_sign = match model.sense() {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };

    let int_vars: Vec<VarId> = model
        .vars()
        .iter()
        .enumerate()
        .filter(|(_, v)| v.integer)
        .map(|(i, _)| VarId(i))
        .collect();

    // Pure LP: answer directly.
    if int_vars.is_empty() {
        return solve_lp(model);
    }
    let mut milp_span = eprons_obs::Span::enter("lp.milp");

    let mut heap = BinaryHeap::new();
    heap.push(Node {
        overrides: Vec::new(),
        bound_key: f64::NEG_INFINITY,
    });

    let mut incumbent: Option<Solution> = None;
    let mut incumbent_key = f64::INFINITY;
    if let Some(hint) = incumbent_hint {
        if hint.len() == model.vars().len() {
            let mut vals = hint.to_vec();
            for &v in &int_vars {
                vals[v.index()] = vals[v.index()].round();
            }
            if model.is_feasible(&vals, 1e-7) {
                let obj = model.objective_value(&vals);
                incumbent_key = key_sign * obj;
                incumbent = Some(Solution {
                    objective: obj,
                    values: vals,
                });
                if eprons_obs::enabled() {
                    eprons_obs::registry()
                        .counter("lp.milp.incumbent_injected")
                        .inc();
                }
            }
            // Infeasible hint: fall through to the cold path unchanged.
        }
    }
    let mut nodes = 0usize;
    let mut root_infeasible = true;
    // Fetched once: handles are lock-free, lookups are not.
    let node_counter =
        eprons_obs::enabled().then(|| eprons_obs::registry().counter("lp.milp.nodes"));

    while let Some(node) = heap.pop() {
        if nodes >= opts.max_nodes {
            break;
        }
        // Bound-based pruning (parent bound may already be dominated).
        if node.bound_key >= incumbent_key - opts.rel_gap * incumbent_key.abs().max(1.0) {
            continue;
        }
        nodes += 1;
        if let Some(c) = &node_counter {
            c.inc();
        }

        // Apply branch bounds to a scratch copy of the model.
        let mut scratch = model.clone();
        for &(v, lo, hi) in &node.overrides {
            if lo > hi {
                continue; // empty box — infeasible branch
            }
            scratch.set_bounds(v, lo, hi);
        }
        if node.overrides.iter().any(|&(_, lo, hi)| lo > hi) {
            continue;
        }

        let relax = match solve_lp(&scratch) {
            Ok(s) => s,
            Err(SolveError::Infeasible) => continue,
            Err(SolveError::Unbounded) if node.overrides.is_empty() => {
                return Err(SolveError::Unbounded);
            }
            Err(SolveError::Unbounded) => continue,
            Err(e) => return Err(e),
        };
        root_infeasible = false;
        let relax_key = key_sign * relax.objective;
        if relax_key >= incumbent_key - opts.rel_gap * incumbent_key.abs().max(1.0) {
            continue; // cannot beat the incumbent
        }

        // Find the most fractional integer variable (largest distance to
        // the nearest integer; 0.5 is maximally fractional).
        let mut branch: Option<VarId> = None;
        let mut best_frac = opts.int_tol;
        for &v in &int_vars {
            let x = relax.values[v.index()];
            let frac = (x - x.round()).abs();
            if frac > best_frac {
                best_frac = frac;
                branch = Some(v);
            }
        }

        match branch {
            None => {
                // Integral: snap and accept as incumbent if better.
                let mut vals = relax.values.clone();
                for &v in &int_vars {
                    vals[v.index()] = vals[v.index()].round();
                }
                let obj = model.objective_value(&vals);
                let key = key_sign * obj;
                if key < incumbent_key {
                    incumbent_key = key;
                    incumbent = Some(Solution {
                        objective: obj,
                        values: vals,
                    });
                }
            }
            Some(v) => {
                let x = relax.values[v.index()];
                let var = &model.vars()[v.index()];
                // Current effective bounds along this branch.
                let (mut lo, mut hi) = (var.lower, var.upper);
                for &(w, l, h) in &node.overrides {
                    if w == v {
                        lo = l;
                        hi = h;
                    }
                }
                // Down child: x <= floor(x).
                let mut down = node.overrides.clone();
                down.push((v, lo, x.floor()));
                heap.push(Node {
                    overrides: down,
                    bound_key: relax_key,
                });
                // Up child: x >= ceil(x).
                let mut up = node.overrides.clone();
                up.push((v, x.ceil(), hi));
                heap.push(Node {
                    overrides: up,
                    bound_key: relax_key,
                });
            }
        }
    }

    if eprons_obs::enabled() {
        milp_span.note(format!("nodes={nodes} found={}", incumbent.is_some()));
    }
    match incumbent {
        Some(sol) => Ok(sol),
        None if root_infeasible => Err(SolveError::Infeasible),
        None if nodes >= opts.max_nodes => Err(SolveError::IterationLimit),
        None => Err(SolveError::Infeasible),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Cmp;

    #[test]
    fn knapsack_small() {
        // max 10a + 13b + 7c  s.t. 3a + 4b + 2c <= 6, binaries.
        // Best: a + c = 17 (3+2 <= 6 and 10+7); b+c = 20 (4+2=6, 13+7=20). → 20
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary("a", 10.0);
        let b = m.add_binary("b", 13.0);
        let c = m.add_binary("c", 7.0);
        m.add_constraint("cap", vec![(a, 3.0), (b, 4.0), (c, 2.0)], Cmp::Le, 6.0);
        let sol = solve_milp(&m, &MilpOptions::default()).unwrap();
        assert!((sol.objective - 20.0).abs() < 1e-6);
        assert!(sol.value(b) > 0.5 && sol.value(c) > 0.5 && sol.value(a) < 0.5);
    }

    #[test]
    fn integer_rounding_matters() {
        // max x s.t. 2x <= 7, x integer → x = 3 (LP gives 3.5).
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_int_var("x", 0.0, f64::INFINITY, 1.0);
        m.add_constraint("c", vec![(x, 2.0)], Cmp::Le, 7.0);
        let sol = solve_milp(&m, &MilpOptions::default()).unwrap();
        assert!((sol.value(x) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn classic_ip() {
        // max 5x + 4y s.t. 6x + 4y <= 24, x + 2y <= 6, integers.
        // LP optimum (3, 1.5); IP optimum: x=4,y=0 → 20 or x=3,y=1 → 19; check 6*4=24 ok → 20.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_int_var("x", 0.0, f64::INFINITY, 5.0);
        let y = m.add_int_var("y", 0.0, f64::INFINITY, 4.0);
        m.add_constraint("c1", vec![(x, 6.0), (y, 4.0)], Cmp::Le, 24.0);
        m.add_constraint("c2", vec![(x, 1.0), (y, 2.0)], Cmp::Le, 6.0);
        let sol = solve_milp(&m, &MilpOptions::default()).unwrap();
        assert!((sol.objective - 20.0).abs() < 1e-6);
        assert!((sol.value(x) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_ip() {
        // 0.4 <= x <= 0.6 with x integer.
        let mut m = Model::new(Sense::Minimize);
        let _x = m.add_int_var("x", 0.4, 0.6, 1.0);
        assert!(matches!(
            solve_milp(&m, &MilpOptions::default()),
            Err(SolveError::Infeasible)
        ));
    }

    #[test]
    fn mixed_integer_continuous() {
        // min y s.t. y >= x - 0.5, y >= 0.5 - x, x binary → x∈{0,1}, y = 0.5.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_binary("x", 0.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 1.0);
        m.add_constraint("c1", vec![(y, 1.0), (x, -1.0)], Cmp::Ge, -0.5);
        m.add_constraint("c2", vec![(y, 1.0), (x, 1.0)], Cmp::Ge, 0.5);
        let sol = solve_milp(&m, &MilpOptions::default()).unwrap();
        assert!((sol.objective - 0.5).abs() < 1e-6);
        let xv = sol.value(x);
        assert!(xv.abs() < 1e-6 || (xv - 1.0).abs() < 1e-6);
    }

    #[test]
    fn pure_lp_passthrough() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 1.0, 4.0, 2.0);
        let sol = solve_milp(&m, &MilpOptions::default()).unwrap();
        assert!((sol.value(x) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fixed_charge_structure() {
        // A tiny version of the paper's structure: route demand d over one
        // of two links; opening link i costs s_i; capacity c_i.
        // min 10*y1 + 3*y2 s.t. f1 <= 5*y1, f2 <= 5*y2, f1 + f2 = 4,
        // no-split: f1 = 4*z1, f2 = 4*z2, z1 + z2 = 1 (z binary).
        // → choose link 2 (cost 3).
        let mut m = Model::new(Sense::Minimize);
        let y1 = m.add_binary("y1", 10.0);
        let y2 = m.add_binary("y2", 3.0);
        let z1 = m.add_binary("z1", 0.0);
        let z2 = m.add_binary("z2", 0.0);
        let f1 = m.add_var("f1", 0.0, f64::INFINITY, 0.0);
        let f2 = m.add_var("f2", 0.0, f64::INFINITY, 0.0);
        m.add_constraint("cap1", vec![(f1, 1.0), (y1, -5.0)], Cmp::Le, 0.0);
        m.add_constraint("cap2", vec![(f2, 1.0), (y2, -5.0)], Cmp::Le, 0.0);
        m.add_constraint("demand", vec![(f1, 1.0), (f2, 1.0)], Cmp::Eq, 4.0);
        m.add_constraint("nosplit1", vec![(f1, 1.0), (z1, -4.0)], Cmp::Eq, 0.0);
        m.add_constraint("nosplit2", vec![(f2, 1.0), (z2, -4.0)], Cmp::Eq, 0.0);
        m.add_constraint("choose", vec![(z1, 1.0), (z2, 1.0)], Cmp::Eq, 1.0);
        let sol = solve_milp(&m, &MilpOptions::default()).unwrap();
        assert!((sol.objective - 3.0).abs() < 1e-6);
        assert!(sol.value(y2) > 0.5 && sol.value(z2) > 0.5);
        assert!((sol.value(f2) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn node_budget_returns_incumbent_or_limit() {
        // A problem big enough to need branching but trivially bounded.
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..8)
            .map(|i| m.add_binary(format!("x{i}"), (i + 1) as f64))
            .collect();
        let terms: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
        m.add_constraint("cap", terms, Cmp::Le, 3.0);
        // Best: pick the three largest → 8+7+6 = 21.
        let sol = solve_milp(&m, &MilpOptions::default()).unwrap();
        assert!((sol.objective - 21.0).abs() < 1e-6);
        // With a tiny node budget we still either get *a* feasible point or
        // a limit error — never a wrong "optimal".
        let tiny = MilpOptions {
            max_nodes: 1,
            ..Default::default()
        };
        match solve_milp(&m, &tiny) {
            Ok(sol) => assert!(m.is_feasible(&sol.values, 1e-6)),
            Err(SolveError::IterationLimit) => {}
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }

    #[test]
    fn incumbent_injection_never_worsens_the_answer() {
        // Knapsack from above; inject the known optimum {b, c} and a
        // deliberately infeasible hint, both must land on objective 20.
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary("a", 10.0);
        let b = m.add_binary("b", 13.0);
        let c = m.add_binary("c", 7.0);
        m.add_constraint("cap", vec![(a, 3.0), (b, 4.0), (c, 2.0)], Cmp::Le, 6.0);
        let opts = MilpOptions::default();

        let good_hint = vec![0.0, 1.0, 1.0];
        let sol = solve_milp_with_incumbent(&m, &opts, Some(&good_hint)).unwrap();
        assert!((sol.objective - 20.0).abs() < 1e-6);
        assert!(m.is_feasible(&sol.values, 1e-6));

        // Infeasible hint (violates the capacity row): cold behavior.
        let bad_hint = vec![1.0, 1.0, 1.0];
        let sol = solve_milp_with_incumbent(&m, &opts, Some(&bad_hint)).unwrap();
        assert!((sol.objective - 20.0).abs() < 1e-6);

        // Wrong arity: also cold behavior, never a panic.
        let sol = solve_milp_with_incumbent(&m, &opts, Some(&[1.0])).unwrap();
        assert!((sol.objective - 20.0).abs() < 1e-6);
    }

    #[test]
    fn injected_incumbent_survives_a_tiny_node_budget() {
        // With max_nodes = 1 the cold solve may fail with IterationLimit;
        // an injected feasible incumbent guarantees *a* feasible answer.
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..8)
            .map(|i| m.add_binary(format!("x{i}"), (i + 1) as f64))
            .collect();
        let terms: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
        m.add_constraint("cap", terms, Cmp::Le, 3.0);
        let tiny = MilpOptions {
            max_nodes: 1,
            ..Default::default()
        };
        let mut hint = vec![0.0; 8];
        hint[0] = 1.0; // feasible but far from optimal
        let sol = solve_milp_with_incumbent(&m, &tiny, Some(&hint)).unwrap();
        assert!(m.is_feasible(&sol.values, 1e-6));
        assert!(sol.objective >= 1.0 - 1e-9);
    }

    #[test]
    fn solution_is_feasible_in_original_model() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_int_var("x", 0.0, 10.0, 1.0);
        let y = m.add_int_var("y", 0.0, 10.0, 2.0);
        m.add_constraint("c1", vec![(x, 2.0), (y, 3.0)], Cmp::Ge, 12.0);
        m.add_constraint("c2", vec![(x, 1.0), (y, -1.0)], Cmp::Le, 3.0);
        let sol = solve_milp(&m, &MilpOptions::default()).unwrap();
        assert!(m.is_feasible(&sol.values, 1e-6));
    }
}
