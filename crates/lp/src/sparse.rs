//! Sparse revised simplex over a CSC-stored constraint matrix.
//!
//! The consolidation LPs are network-flow structured: >99% of the dense
//! tableau is zero at k ≥ 8, so the dense two-phase method in
//! [`crate::simplex`] pays O(m·n) per pivot on work that is almost
//! entirely multiplication by zero. This module keeps the constraint
//! matrix in compressed-sparse-column form ([`CscMatrix`]) and runs the
//! *revised* simplex instead: the basis inverse is carried as a product
//! of sparse eta matrices (product-form LU — each refactorization is a
//! Gaussian LU of the basis with partial pivoting, stored as an eta
//! file), pivots touch only the nonzeros of the entering column, and
//! pricing walks CSC columns in O(nnz).
//!
//! Basis updates are product-form appends with
//! **refactorization-on-threshold**: each pivot appends one eta vector,
//! and once the eta file exceeds its budget the basis is refactorized
//! from scratch — the simple, robust cousin of Forrest–Tomlin updates
//! (which rearrange the U factor instead of appending; with the
//! near-identity bases these LPs produce, the eta file stays short and
//! the threshold policy wins on simplicity). Entering-variable selection
//! is Dantzig's rule evaluated with **partial pricing**: candidate
//! columns are scanned in rotating blocks and the most negative reduced
//! cost of the first block containing any wins, falling back to Bland's
//! rule after a degenerate run exactly like the dense core.
//!
//! Semantics are bit-compatible with [`crate::simplex`] at the contract
//! level: same standard form, same [`SolveError`] cases, same [`Basis`]
//! type (either core's basis injects into the other), same silent
//! cold-fallback rules for warm starts. The dense core remains the
//! differential-test oracle — see `crates/lp/tests/diff_sparse.rs`.

use crate::simplex::{
    max_iters, Basis, CountedSolve, SolveError, SolveStats, DEGENERATE_LIMIT, TOL,
};

/// A compressed-sparse-column matrix: `values[col_ptr[j]..col_ptr[j+1]]`
/// are column `j`'s nonzeros, at rows `row_idx[..]` (u32 handles — the
/// substrate never exceeds 2³² rows). Built once per standardized model
/// and shared by every solve against it.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    m: usize,
    n: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Builds from `(row, col, value)` triplets in any order. Duplicate
    /// coordinates are summed; explicit and summed-to-zero entries are
    /// kept (they are harmless and rare).
    ///
    /// # Panics
    /// Panics when a triplet indexes outside `m × n`.
    pub fn from_triplets(m: usize, n: usize, mut trip: Vec<(u32, u32, f64)>) -> Self {
        trip.sort_unstable_by_key(|&(r, c, _)| (c, r));
        let mut col_ptr = vec![0usize; n + 1];
        let mut row_idx = Vec::with_capacity(trip.len());
        let mut values: Vec<f64> = Vec::with_capacity(trip.len());
        let mut last: Option<(u32, u32)> = None;
        for &(r, c, v) in &trip {
            assert!((r as usize) < m && (c as usize) < n, "triplet out of range");
            if last == Some((c, r)) {
                // Same (col, row) as the previous triplet: merge.
                *values.last_mut().expect("non-empty") += v;
                continue;
            }
            row_idx.push(r);
            values.push(v);
            col_ptr[c as usize + 1] += 1;
            last = Some((c, r));
        }
        for j in 0..n {
            col_ptr[j + 1] += col_ptr[j];
        }
        CscMatrix {
            m,
            n,
            col_ptr,
            row_idx,
            values,
        }
    }

    /// Builds from a dense slice-of-rows matrix (the differential-test
    /// entry point; production models are built as triplets directly).
    pub fn from_dense(a: &[Vec<f64>]) -> Self {
        let m = a.len();
        let n = a.first().map_or(0, Vec::len);
        let mut trip = Vec::new();
        for (i, row) in a.iter().enumerate() {
            assert_eq!(row.len(), n, "ragged dense matrix");
            for (j, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    trip.push((i as u32, j as u32, v));
                }
            }
        }
        Self::from_triplets(m, n, trip)
    }

    /// Row count.
    pub fn num_rows(&self) -> usize {
        self.m
    }

    /// Column count.
    pub fn num_cols(&self) -> usize {
        self.n
    }

    /// Stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Column `j` as parallel `(rows, values)` slices.
    #[inline]
    pub fn col(&self, j: usize) -> (&[u32], &[f64]) {
        let lo = self.col_ptr[j];
        let hi = self.col_ptr[j + 1];
        (&self.row_idx[lo..hi], &self.values[lo..hi])
    }

    /// `y · a_j` in O(nnz(a_j)).
    #[inline]
    pub fn col_dot(&self, j: usize, y: &[f64]) -> f64 {
        let (rows, vals) = self.col(j);
        let mut acc = 0.0;
        for (&r, &v) in rows.iter().zip(vals) {
            acc += y[r as usize] * v;
        }
        acc
    }

    /// Densifies into a flat row-major `m × n` buffer (the small-model
    /// path in [`crate::standard`] hands this to the dense tableau).
    pub fn to_row_major(&self) -> Vec<f64> {
        let mut flat = vec![0.0; self.m * self.n];
        for j in 0..self.n {
            let (rows, vals) = self.col(j);
            for (&r, &v) in rows.iter().zip(vals) {
                flat[r as usize * self.n + j] = v;
            }
        }
        flat
    }
}

/// One product-form update: the basis inverse gains a factor `E` that is
/// the identity except in column `r`.
struct Eta {
    r: u32,
    /// `1 / w_r` where `w` was the FTRANed entering column.
    diag: f64,
    /// Off-diagonal column-`r` entries `(i, -w_i / w_r)`, sparse.
    entries: Vec<(u32, f64)>,
}

/// The basis inverse as an eta file: `B⁻¹ = E_k ··· E_1`.
struct Factor {
    etas: Vec<Eta>,
}

impl Factor {
    /// `x ← B⁻¹ x` (forward transformation: oldest eta first).
    fn ftran(&self, x: &mut [f64]) {
        for e in &self.etas {
            let r = e.r as usize;
            let xr = x[r];
            if xr != 0.0 {
                x[r] = e.diag * xr;
                for &(i, v) in &e.entries {
                    x[i as usize] += v * xr;
                }
            }
        }
    }

    /// `yᵀ ← yᵀ B⁻¹` (backward transformation: newest eta first; each
    /// eta only rewrites component `r`).
    fn btran(&self, y: &mut [f64]) {
        for e in self.etas.iter().rev() {
            let r = e.r as usize;
            let mut s = e.diag * y[r];
            for &(i, v) in &e.entries {
                s += v * y[i as usize];
            }
            y[r] = s;
        }
    }

    /// Appends the eta for a pivot on row `r` of the FTRANed column `w`.
    fn push_pivot(&mut self, w: &[f64], r: usize) {
        let diag = 1.0 / w[r];
        let entries: Vec<(u32, f64)> = w
            .iter()
            .enumerate()
            .filter(|&(i, &wi)| i != r && wi != 0.0)
            .map(|(i, &wi)| (i as u32, -wi * diag))
            .collect();
        self.etas.push(Eta {
            r: r as u32,
            diag,
            entries,
        });
    }
}

/// Revised-simplex working state for one standard-form solve.
struct Revised<'a> {
    a: &'a CscMatrix,
    b: &'a [f64],
    m: usize,
    n: usize,
    /// Row of each artificial; artificial `k` is column `n + k`.
    art_row: Vec<u32>,
    /// Basic column per row.
    basis: Vec<usize>,
    /// Membership flags over all `n + art_row.len()` columns.
    in_basis: Vec<bool>,
    factor: Factor,
    /// Basic variable values, one per row (paired with `basis`).
    xb: Vec<f64>,
    pivots: u64,
    refactorizations: u64,
    /// Number of *update* etas (appended by pivots since the last
    /// refactorization) that triggers a refactorization. The LU itself
    /// contributes one eta per basis column, so the trigger must count
    /// `etas.len() - base_etas`, not the raw file length — comparing the
    /// raw length would re-trip immediately after every refactorization
    /// and turn each pivot into an O(m³) rebuild.
    refresh: usize,
    /// Eta-file length right after the last refactorization (the LU's
    /// own etas, excluded from the refresh budget).
    base_etas: usize,
    /// Rotating partial-pricing cursor.
    cursor: usize,
    /// Dense scratch vectors (allocated once).
    w: Vec<f64>,
    y: Vec<f64>,
}

impl<'a> Revised<'a> {
    fn new(a: &'a CscMatrix, b: &'a [f64]) -> Self {
        let m = a.num_rows();
        Revised {
            a,
            b,
            m,
            n: a.num_cols(),
            art_row: Vec::new(),
            basis: vec![0; m],
            in_basis: Vec::new(),
            factor: Factor { etas: Vec::new() },
            xb: b.to_vec(),
            pivots: 0,
            refactorizations: 0,
            refresh: (m / 4).max(64),
            base_etas: 0,
            cursor: 0,
            w: vec![0.0; m],
            y: vec![0.0; m],
        }
    }

    fn total_cols(&self) -> usize {
        self.n + self.art_row.len()
    }

    /// Scatters column `j` (structural/slack, or artificial unit column)
    /// into the dense scratch `out`.
    fn scatter_col(&self, j: usize, out: &mut [f64]) {
        out.fill(0.0);
        if j < self.n {
            let (rows, vals) = self.a.col(j);
            for (&r, &v) in rows.iter().zip(vals) {
                out[r as usize] = v;
            }
        } else {
            out[self.art_row[j - self.n] as usize] = 1.0;
        }
    }

    /// `y · a_j` without scattering.
    fn col_dot(&self, j: usize, y: &[f64]) -> f64 {
        if j < self.n {
            self.a.col_dot(j, y)
        } else {
            y[self.art_row[j - self.n] as usize]
        }
    }

    /// Rebuilds the eta file as a fresh LU of the current basis columns
    /// (Gaussian elimination with partial pivoting, product form) and
    /// recomputes `xb = B⁻¹ b`. The row↔column pairing is re-derived —
    /// the basis is a *set* of columns. Fails when the column set is
    /// numerically singular.
    fn refactorize(&mut self) -> Result<(), ()> {
        self.factor.etas.clear();
        // Fill-reducing order: eliminate sparse columns first. Unit
        // columns (slacks, artificials) pivot with zero fill, and short
        // structural columns fill less than long ones, so ascending nnz
        // keeps the LU etas — and with them every later FTRAN/BTRAN —
        // near the basis's own sparsity. The basis is a *set*: the
        // row↔column pairing is re-derived below, so elimination order
        // is free to choose.
        let mut cols: Vec<usize> = self.basis.clone();
        cols.sort_by_key(|&j| if j < self.n { self.a.col(j).0.len() } else { 1 });
        let mut assigned = vec![false; self.m];
        let mut pivot_row = vec![0usize; self.m];
        for (s, &j) in cols.iter().enumerate() {
            // w = (E_built_so_far) a_j
            let mut w = std::mem::take(&mut self.w);
            self.scatter_col(j, &mut w);
            self.factor.ftran(&mut w);
            let mut best_r = usize::MAX;
            let mut best_v = 1e-7;
            for (r, &wr) in w.iter().enumerate() {
                if !assigned[r] && wr.abs() > best_v {
                    best_v = wr.abs();
                    best_r = r;
                }
            }
            if best_r == usize::MAX {
                self.w = w;
                return Err(()); // singular basis
            }
            self.factor.push_pivot(&w, best_r);
            assigned[best_r] = true;
            pivot_row[s] = best_r;
            self.w = w;
        }
        for (s, &j) in cols.iter().enumerate() {
            self.basis[pivot_row[s]] = j;
        }
        self.refactorizations += 1;
        self.base_etas = self.factor.etas.len();
        self.xb.copy_from_slice(self.b);
        self.factor.ftran(&mut self.xb);
        Ok(())
    }

    /// Current objective under `cost`.
    fn objective(&self, cost: &[f64]) -> f64 {
        self.basis
            .iter()
            .zip(&self.xb)
            .map(|(&j, &x)| cost[j] * x)
            .sum()
    }

    /// Dantzig + partial pricing: scans rotating blocks of columns and
    /// returns the most negative reduced cost in the first block that
    /// has one. `None` means every allowed column priced ≥ −TOL.
    fn price(&mut self, cost: &[f64], allowed_hi: usize, y: &[f64]) -> Option<usize> {
        let total = self.total_cols();
        let block = (total / 8).max(256);
        let mut scanned = 0;
        let mut j = self.cursor % total;
        while scanned < total {
            let mut best: Option<(usize, f64)> = None;
            for _ in 0..block.min(total - scanned) {
                if !self.in_basis[j] && j < allowed_hi {
                    let d = cost[j] - self.col_dot(j, y);
                    if d < -TOL && best.is_none_or(|(_, bd)| d < bd) {
                        best = Some((j, d));
                    }
                }
                j += 1;
                if j == total {
                    j = 0;
                }
            }
            scanned += block;
            if let Some((q, _)) = best {
                self.cursor = j;
                return Some(q);
            }
        }
        None
    }

    /// Bland's rule: first allowed column with a negative reduced cost.
    fn price_bland(&self, cost: &[f64], allowed_hi: usize, y: &[f64]) -> Option<usize> {
        (0..allowed_hi.min(self.total_cols()))
            .find(|&j| !self.in_basis[j] && cost[j] - self.col_dot(j, y) < -TOL)
    }

    /// Runs the revised simplex to optimality on `cost`. Columns at index
    /// `allowed_hi` and beyond may not enter the basis (phase 2 bars the
    /// artificials this way).
    fn optimize(&mut self, cost: &[f64], allowed_hi: usize) -> Result<(), SolveError> {
        let cap = max_iters(self.total_cols(), self.m);
        let mut degenerate_run = 0u32;
        let mut bland = false;
        let mut last_obj = self.objective(cost);
        for _ in 0..cap {
            if self.factor.etas.len() - self.base_etas > self.refresh {
                self.refactorize()
                    .map_err(|()| SolveError::IterationLimit)?;
            }
            // Pricing vector yᵀ = c_B ᵀ B⁻¹.
            let mut y = std::mem::take(&mut self.y);
            for (yr, &j) in y.iter_mut().zip(&self.basis) {
                *yr = cost[j];
            }
            self.factor.btran(&mut y);
            let enter = if bland {
                self.price_bland(cost, allowed_hi, &y)
            } else {
                self.price(cost, allowed_hi, &y)
            };
            self.y = y;
            let Some(q) = enter else {
                return Ok(()); // optimal
            };

            // w = B⁻¹ a_q.
            let mut w = std::mem::take(&mut self.w);
            self.scatter_col(q, &mut w);
            self.factor.ftran(&mut w);

            // Ratio test (Bland tie-break: smallest basis column), same
            // tolerances as the dense core.
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for (r, &wr) in w.iter().enumerate() {
                if wr > TOL {
                    let ratio = self.xb[r] / wr;
                    let better = ratio < best_ratio - TOL
                        || (ratio < best_ratio + TOL
                            && leave.is_none_or(|l| self.basis[r] < self.basis[l]));
                    if better {
                        best_ratio = ratio;
                        leave = Some(r);
                    }
                }
            }
            let Some(r) = leave else {
                self.w = w;
                return Err(SolveError::Unbounded);
            };

            self.pivot_on(q, r, &w);
            self.w = w;

            let obj = self.objective(cost);
            if (obj - last_obj).abs() <= TOL {
                degenerate_run += 1;
                if degenerate_run >= DEGENERATE_LIMIT {
                    bland = true;
                }
            } else {
                degenerate_run = 0;
            }
            last_obj = obj;
        }
        Err(SolveError::IterationLimit)
    }

    /// Applies the basis change: column `q` enters on row `r` with
    /// FTRANed column `w`.
    fn pivot_on(&mut self, q: usize, r: usize, w: &[f64]) {
        let theta = self.xb[r] / w[r];
        for (i, &wi) in w.iter().enumerate() {
            if i != r && wi != 0.0 {
                self.xb[i] -= theta * wi;
                if self.xb[i] < 0.0 && self.xb[i] > -TOL {
                    self.xb[i] = 0.0;
                }
            }
        }
        self.xb[r] = theta;
        self.factor.push_pivot(w, r);
        self.in_basis[self.basis[r]] = false;
        self.in_basis[q] = true;
        self.basis[r] = q;
        self.pivots += 1;
    }

    /// Extracts the structural solution and final basis. Refactorizes
    /// first so `xb` comes from a fresh factorization rather than a long
    /// eta product (keeps the differential-test 1e-9 bound honest).
    fn extract(&mut self) -> (Vec<f64>, Basis) {
        if !self.factor.etas.is_empty() {
            // A basis that just solved to optimality cannot be singular;
            // if refactorization still fails numerically, the eta-file
            // values already in xb stand.
            let _ = self.refactorize();
        }
        let mut sol = vec![0.0; self.n];
        for (r, &j) in self.basis.iter().enumerate() {
            if j < self.n {
                let v = self.xb[r];
                sol[j] = if v < 0.0 && v > -TOL { 0.0 } else { v };
            }
        }
        (
            sol,
            Basis {
                cols: self.basis.clone(),
                n: self.n,
            },
        )
    }
}

/// Sparse twin of [`crate::simplex::solve_counted_warm`]: solves
/// `min c·y` s.t. `A·y = b`, `y ≥ 0` for CSC-stored `A`, with the same
/// slack-basis convention, warm-start semantics, and error cases as the
/// dense core.
///
/// # Errors
/// [`SolveError::Infeasible`] / [`SolveError::Unbounded`] /
/// [`SolveError::IterationLimit`] as usual, plus
/// [`SolveError::BasisMismatch`] when `warm` comes from a model with
/// different dimensions.
///
/// # Panics
/// Panics on dimension mismatches or negative `b`.
pub fn solve_counted_warm_csc(
    a: &CscMatrix,
    b: &[f64],
    c: &[f64],
    slack_basis: &[Option<usize>],
    warm: Option<&Basis>,
) -> CountedSolve {
    let m = a.num_rows();
    let n = a.num_cols();
    assert_eq!(b.len(), m, "b length mismatch");
    assert_eq!(c.len(), n, "c length mismatch");
    assert_eq!(slack_basis.len(), m, "slack_basis length mismatch");
    assert!(b.iter().all(|&v| v >= 0.0), "standard form requires b >= 0");

    if let Some(basis) = warm {
        if basis.cols.len() != m || basis.n != n {
            return Err(SolveError::BasisMismatch);
        }
        if let Some(result) = try_warm_csc(a, b, c, basis) {
            return result;
        }
    }

    solve_cold_csc(a, b, c, slack_basis)
}

/// Warm path: refactorize straight from the stored basis columns, check
/// primal feasibility for the new RHS, run phase 2 only. `None` ⇒ fall
/// back cold (same rules as the dense `try_warm`).
fn try_warm_csc(a: &CscMatrix, b: &[f64], c: &[f64], basis: &Basis) -> Option<CountedSolve> {
    let n = a.num_cols();
    if basis.cols.iter().any(|&col| col >= n) {
        return None; // artificial columns don't exist in the warm solve
    }
    let mut sorted = basis.cols.clone();
    sorted.sort_unstable();
    if sorted.windows(2).any(|w| w[0] == w[1]) {
        return None; // duplicate column: not a valid basis
    }

    let mut rs = Revised::new(a, b);
    rs.basis.copy_from_slice(&basis.cols);
    rs.in_basis = vec![false; rs.total_cols()];
    for &j in &basis.cols {
        rs.in_basis[j] = true;
    }
    if rs.refactorize().is_err() {
        return None; // singular injection
    }
    rs.refactorizations = 0; // injection LU is not a *re*-factorization
    if rs.xb.iter().any(|&v| v < -TOL) {
        return None; // warm basis infeasible here: solve cold
    }
    for v in rs.xb.iter_mut() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }

    match rs.optimize(c, n) {
        Ok(()) => {}
        // Unboundedness is a property of the model, not of the start.
        Err(SolveError::Unbounded) => return Some(Err(SolveError::Unbounded)),
        // Anything else: let the cold path have a clean try.
        Err(_) => return None,
    }

    let (sol, out_basis) = rs.extract();
    Some(Ok((
        sol,
        SolveStats {
            iterations: rs.pivots,
            warm_started: true,
            refactorizations: rs.refactorizations,
        },
        out_basis,
    )))
}

/// Cold two-phase path on the revised core.
fn solve_cold_csc(
    a: &CscMatrix,
    b: &[f64],
    c: &[f64],
    slack_basis: &[Option<usize>],
) -> CountedSolve {
    let m = a.num_rows();
    let n = a.num_cols();
    let mut rs = Revised::new(a, b);

    // Initial basis: the ready slack per row where one exists, a fresh
    // artificial elsewhere. Both are unit columns, so B = I exactly: the
    // eta file starts empty and xb = b.
    for (i, sb) in slack_basis.iter().enumerate() {
        match sb {
            Some(col) => rs.basis[i] = *col,
            None => {
                rs.basis[i] = n + rs.art_row.len();
                rs.art_row.push(i as u32);
            }
        }
    }
    let n_art = rs.art_row.len();
    rs.in_basis = vec![false; n + n_art];
    for &j in &rs.basis {
        rs.in_basis[j] = true;
    }

    // ---- Phase 1: minimize the sum of artificials. ----
    if n_art > 0 {
        let mut cost1 = vec![0.0; n + n_art];
        for v in cost1[n..].iter_mut() {
            *v = 1.0;
        }
        rs.optimize(&cost1, n + n_art)?;
        if rs.objective(&cost1) > 1e-7 {
            return Err(SolveError::Infeasible);
        }
        // Drive any artificial still basic (at zero) out of the basis:
        // BTRAN the row's unit vector to price row r of B⁻¹A, then pivot
        // in the first structural column with a usable entry. Redundant
        // (all-zero) rows keep their artificial basic at 0, which is
        // harmless because phase 2 bars artificials from entering.
        for r in 0..m {
            if rs.basis[r] >= n {
                let mut rho = vec![0.0; m];
                rho[r] = 1.0;
                rs.factor.btran(&mut rho);
                let entering =
                    (0..n).find(|&j| !rs.in_basis[j] && rs.col_dot(j, &rho).abs() > 1e-7);
                if let Some(q) = entering {
                    let mut w = std::mem::take(&mut rs.w);
                    rs.scatter_col(q, &mut w);
                    rs.factor.ftran(&mut w);
                    rs.pivot_on(q, r, &w);
                    rs.w = w;
                }
            }
        }
    }

    // ---- Phase 2: the true objective (artificials barred). ----
    let mut cost2 = vec![0.0; n + n_art];
    cost2[..n].copy_from_slice(c);
    rs.optimize(&cost2, n)?;

    let (sol, basis) = rs.extract();
    Ok((
        sol,
        SolveStats {
            iterations: rs.pivots,
            warm_started: false,
            refactorizations: rs.refactorizations,
        },
        basis,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::solve_counted_warm;

    fn csc(a: &[Vec<f64>]) -> CscMatrix {
        CscMatrix::from_dense(a)
    }

    #[test]
    fn csc_round_trips_dense() {
        let a = vec![
            vec![1.0, 0.0, 2.0, 0.0],
            vec![0.0, 0.0, -3.0, 4.0],
            vec![5.0, 6.0, 0.0, 0.0],
        ];
        let s = csc(&a);
        assert_eq!((s.num_rows(), s.num_cols(), s.nnz()), (3, 4, 6));
        let flat = s.to_row_major();
        for (i, row) in a.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                assert_eq!(flat[i * 4 + j], v);
            }
        }
    }

    #[test]
    fn triplets_merge_duplicates() {
        let s = CscMatrix::from_triplets(
            2,
            2,
            vec![(0, 0, 1.0), (1, 1, 2.0), (0, 0, 3.0), (1, 0, 0.5)],
        );
        assert_eq!(s.nnz(), 3);
        let flat = s.to_row_major();
        assert_eq!(flat, vec![4.0, 0.0, 0.5, 2.0]);
    }

    /// `(A, b, c, slack_basis)` fixture rows.
    type Fixture = (Vec<Vec<f64>>, Vec<f64>, Vec<f64>, Vec<Option<usize>>);

    #[test]
    fn matches_dense_on_basic_cases() {
        // Same fixtures as the dense unit tests.
        let cases: Vec<Fixture> = vec![
            (
                vec![vec![1.0, 1.0, 1.0]],
                vec![3.0],
                vec![-1.0, -2.0, 0.0],
                vec![Some(2)],
            ),
            (vec![vec![1.0, 1.0]], vec![4.0], vec![1.0, 1.0], vec![None]),
            (
                vec![
                    vec![1.0, 2.0, 0.0, 1.0, 0.0],
                    vec![0.0, 1.0, 1.0, 0.0, 1.0],
                    vec![2.0, 0.0, 1.0, 0.0, 0.0],
                ],
                vec![4.0, 3.0, 5.0],
                vec![1.0, 1.0, 1.0, 0.1, 0.1],
                vec![None, None, None],
            ),
        ];
        for (a, b, c, sb) in cases {
            let dense = solve_counted_warm(&a, &b, &c, &sb, None).unwrap();
            let sparse = solve_counted_warm_csc(&csc(&a), &b, &c, &sb, None).unwrap();
            let od: f64 = c.iter().zip(&dense.0).map(|(c, y)| c * y).sum();
            let os: f64 = c.iter().zip(&sparse.0).map(|(c, y)| c * y).sum();
            assert!((od - os).abs() < 1e-9, "objective {od} vs {os}");
        }
    }

    #[test]
    fn error_cases_match_dense() {
        let a = vec![vec![1.0], vec![1.0]];
        assert_eq!(
            solve_counted_warm_csc(&csc(&a), &[2.0, 3.0], &[0.0], &[None, None], None).unwrap_err(),
            SolveError::Infeasible
        );
        let a = vec![vec![1.0, -1.0]];
        assert_eq!(
            solve_counted_warm_csc(&csc(&a), &[0.0], &[-1.0, 0.0], &[None], None).unwrap_err(),
            SolveError::Unbounded
        );
    }

    #[test]
    fn warm_start_round_trips_across_cores() {
        // Basis extracted from the dense core injects into the sparse
        // core (and back), with warm_started reported.
        let a = vec![vec![1.0, 2.0, 0.0], vec![0.0, 1.0, 1.0]];
        let c = vec![1.0, 1.0, 1.0];
        let sb = vec![None, None];
        let (_, _, basis) = solve_counted_warm(&a, &[4.0, 3.0], &c, &sb, None).unwrap();
        let (ys, ss, basis2) =
            solve_counted_warm_csc(&csc(&a), &[4.4, 3.3], &c, &sb, Some(&basis)).unwrap();
        assert!(ss.warm_started);
        let (yd, _, _) = solve_counted_warm(&a, &[4.4, 3.3], &c, &sb, Some(&basis)).unwrap();
        for (s, d) in ys.iter().zip(&yd) {
            assert!((s - d).abs() < 1e-9, "warm sparse {s} vs dense {d}");
        }
        // And back into the dense core.
        let (yd2, sd2, _) = solve_counted_warm(&a, &[4.0, 3.0], &c, &sb, Some(&basis2)).unwrap();
        assert!(sd2.warm_started);
        assert!(yd2.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn mismatched_basis_is_rejected() {
        let a = vec![vec![1.0, 2.0]];
        let (_, _, basis) = solve_counted_warm(&a, &[4.0], &[1.0, 1.0], &[None], None).unwrap();
        let a2 = vec![vec![1.0, 2.0, 1.0]];
        assert_eq!(
            solve_counted_warm_csc(
                &csc(&a2),
                &[4.0],
                &[1.0, 1.0, 0.0],
                &[Some(2)],
                Some(&basis)
            )
            .unwrap_err(),
            SolveError::BasisMismatch
        );
    }

    #[test]
    fn refactorization_threshold_is_exercised() {
        // A long chain of pivots on a staircase system forces the eta
        // file past its budget: refactorizations must be counted and the
        // answer still match the dense oracle.
        let n = 80;
        let mut a = vec![vec![0.0; 2 * n]; n];
        let mut b = vec![0.0; n];
        let mut c = vec![0.0; 2 * n];
        let mut sb = vec![None; n];
        for i in 0..n {
            a[i][i] = 1.0;
            if i > 0 {
                a[i][i - 1] = -0.5;
            }
            a[i][n + i] = 1.0; // slack
            b[i] = 1.0 + (i as f64) * 0.01;
            c[i] = -1.0 - (i % 7) as f64 * 0.1;
            sb[i] = Some(n + i);
        }
        let dense = solve_counted_warm(&a, &b, &c, &sb, None).unwrap();
        let mat = csc(&a);
        let mut small = Revised::new(&mat, &b);
        small.refresh = 8; // force frequent refactorization
        for (i, s) in sb.iter().enumerate() {
            small.basis[i] = s.unwrap();
        }
        small.in_basis = vec![false; small.total_cols()];
        for &j in &small.basis {
            small.in_basis[j] = true;
        }
        small.optimize(&c, 2 * n).unwrap();
        assert!(small.refactorizations > 0, "threshold never hit");
        let (sol, _) = small.extract();
        let od: f64 = c.iter().zip(&dense.0).map(|(c, y)| c * y).sum();
        let os: f64 = c.iter().zip(&sol).map(|(c, y)| c * y).sum();
        assert!((od - os).abs() < 1e-9, "objective {od} vs {os}");
    }
}
