//! Dense two-phase primal simplex.
//!
//! Operates on standard form: `min c·y` s.t. `A·y = b`, `y ≥ 0`, `b ≥ 0`.
//! Phase 1 introduces artificial variables for rows without a ready slack
//! basis and minimizes their sum; phase 2 optimizes the true objective.
//! Pivoting uses Dantzig's rule, falling back permanently to Bland's rule
//! after a run of non-improving (degenerate) iterations so the method
//! provably terminates (Beale's cycling example is a unit test in
//! [`crate::standard`]).
//!
//! The tableau lives in a single flat row-major buffer (`m × (n+1)`
//! doubles, stride `n+1`) rather than a `Vec<Vec<f64>>`: one allocation,
//! no per-row pointer chase, and the pivot's row updates walk contiguous
//! memory. This dense path remains the solver of record for tiny models
//! and the differential-test oracle for the sparse revised simplex in
//! [`crate::sparse`]; [`crate::standard`] picks between them by size.

// Dense-tableau pivoting is clearer with explicit indices than with
// iterator adapters; silence the style lint for this module.
#![allow(clippy::needless_range_loop)]

/// Solver failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveError {
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded below (for minimization).
    Unbounded,
    /// The pivot limit was exhausted (should not happen with Bland's rule;
    /// kept as a defensive backstop).
    IterationLimit,
    /// A warm-start [`Basis`] was offered to a model with different
    /// dimensions. Structural changes invalidate a basis outright, so this
    /// is reported as an error rather than silently re-solving: the caller
    /// is holding a basis from the wrong model.
    BasisMismatch,
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Infeasible => write!(f, "problem is infeasible"),
            SolveError::Unbounded => write!(f, "objective is unbounded"),
            SolveError::IterationLimit => write!(f, "simplex iteration limit reached"),
            SolveError::BasisMismatch => {
                write!(f, "warm-start basis does not match the model dimensions")
            }
        }
    }
}

impl std::error::Error for SolveError {}

pub(crate) const TOL: f64 = 1e-9;
/// Consecutive degenerate pivots tolerated before switching to Bland's rule.
pub(crate) const DEGENERATE_LIMIT: u32 = 32;

/// Pivot cap shared by the dense and sparse cores so neither can spin.
pub(crate) fn max_iters(n_total: usize, m: usize) -> usize {
    50_000 + 200 * (n_total + m)
}

/// Work counters for one standard-form solve (both phases).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Total pivots performed, including phase-1 artificial cleanup and
    /// warm-start basis injection.
    pub iterations: u64,
    /// `true` iff a warm-start basis was successfully injected and phase 1
    /// was skipped. A basis that was offered but fell back to the cold
    /// path reports `false`.
    pub warm_started: bool,
    /// Basis refactorizations performed by the sparse revised simplex
    /// (always 0 on the dense tableau path, which carries the explicit
    /// inverse in the tableau itself).
    pub refactorizations: u64,
}

/// A simplex basis snapshot: the set of basic columns of a solved
/// standard-form tableau, one per row.
///
/// Extracted by [`solve_counted_warm`] after a successful solve and
/// re-injectable into a *structurally identical* model — same row and
/// column counts, which is exactly the relationship between adjacent
/// K-ladder candidates (they scale demands but share the fat-tree
/// constraint matrix). Offering a basis to a model with different
/// dimensions returns [`SolveError::BasisMismatch`]; an injection that
/// turns out numerically singular or primal-infeasible for the new RHS
/// silently falls back to the cold two-phase path, so a stale basis can
/// cost time but never correctness.
///
/// The dense tableau and the sparse revised simplex share this type:
/// a basis extracted from either core injects into the other, because
/// both number columns identically (structural+slack first, artificials
/// past `n`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Basis {
    /// Basic column per row of the source tableau (may include artificial
    /// columns when the source model had redundant rows; those bases are
    /// rejected at injection time and solved cold).
    pub(crate) cols: Vec<usize>,
    /// Structural + slack column count (excluding artificials and rhs).
    pub(crate) n: usize,
}

impl Basis {
    /// Rows of the model this basis was extracted from.
    pub fn num_rows(&self) -> usize {
        self.cols.len()
    }

    /// Columns (structural + slack, excluding artificials and the rhs) of
    /// the model this basis was extracted from.
    pub fn num_cols(&self) -> usize {
        self.n
    }
}

/// Outcome of a counted solve: primal values, pivot statistics, and the
/// final basis for reuse on the next structurally-identical model.
pub type CountedSolve = Result<(Vec<f64>, SolveStats, Basis), SolveError>;

/// The working tableau: one flat row-major buffer, stride `n+1` (last
/// column is the rhs), plus the reduced-cost row.
struct Tableau {
    /// `m × (n+1)` values, row-major; entry `(i, j)` is `data[i*(n+1)+j]`.
    data: Vec<f64>,
    /// Reduced-cost row, length `n+1`; last entry is `-objective`.
    cost: Vec<f64>,
    /// Basic column per row.
    basis: Vec<usize>,
    /// Total columns excluding rhs (the row stride is `n+1`).
    n: usize,
    /// Row count.
    m: usize,
    /// Pivots performed so far (all phases).
    pivots: u64,
    /// Reusable snapshot of the pivot row (avoids a per-pivot allocation).
    scratch: Vec<f64>,
}

impl Tableau {
    /// `m × (n+1)` zero tableau.
    fn zeroed(m: usize, n: usize) -> Self {
        Tableau {
            data: vec![0.0; m * (n + 1)],
            cost: vec![0.0; n + 1],
            basis: vec![0; m],
            n,
            m,
            pivots: 0,
            scratch: vec![0.0; n + 1],
        }
    }

    #[inline]
    fn at(&self, i: usize, j: usize) -> f64 {
        self.data[i * (self.n + 1) + j]
    }

    #[inline]
    fn row(&self, i: usize) -> &[f64] {
        let s = self.n + 1;
        &self.data[i * s..(i + 1) * s]
    }

    #[inline]
    fn row_mut(&mut self, i: usize) -> &mut [f64] {
        let s = self.n + 1;
        &mut self.data[i * s..(i + 1) * s]
    }

    fn pivot(&mut self, row: usize, col: usize) {
        self.pivots += 1;
        let piv = self.at(row, col);
        debug_assert!(piv.abs() > TOL, "pivot on (near-)zero element");
        let inv = 1.0 / piv;
        for v in self.row_mut(row).iter_mut() {
            *v *= inv;
        }
        // Snapshot the pivot row to avoid aliasing while updating others.
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.copy_from_slice(self.row(row));
        for i in 0..self.m {
            if i == row {
                continue;
            }
            let factor = self.at(i, col);
            if factor.abs() > 0.0 {
                let r = self.row_mut(i);
                for (v, &p) in r.iter_mut().zip(&scratch) {
                    *v -= factor * p;
                }
                r[col] = 0.0; // kill round-off exactly
            }
        }
        let factor = self.cost[col];
        if factor.abs() > 0.0 {
            for (v, &p) in self.cost.iter_mut().zip(&scratch) {
                *v -= factor * p;
            }
            self.cost[col] = 0.0;
        }
        self.scratch = scratch;
        self.basis[row] = col;
    }

    /// Subtracts `cb ×` row `i` from the cost row (reduced-cost setup).
    fn price_out(&mut self, i: usize, cb: f64) {
        let s = self.n + 1;
        let (head, tail) = self.data.split_at(i * s);
        let _ = head;
        let row = &tail[..s];
        for (v, &p) in self.cost.iter_mut().zip(row) {
            *v -= cb * p;
        }
    }

    /// Runs the simplex loop to optimality on the current cost row.
    /// `allowed` masks columns that may enter the basis.
    fn optimize(&mut self, allowed: &[bool]) -> Result<(), SolveError> {
        let m = self.m;
        let max_iters = max_iters(self.n, m);
        let mut degenerate_run = 0u32;
        let mut bland = false;
        let mut last_obj = self.cost[self.n];
        for _ in 0..max_iters {
            // Entering column.
            let mut enter: Option<usize> = None;
            if bland {
                for j in 0..self.n {
                    if allowed[j] && self.cost[j] < -TOL {
                        enter = Some(j);
                        break;
                    }
                }
            } else {
                let mut best = -TOL;
                for j in 0..self.n {
                    if allowed[j] && self.cost[j] < best {
                        best = self.cost[j];
                        enter = Some(j);
                    }
                }
            }
            let Some(col) = enter else {
                return Ok(()); // optimal
            };

            // Ratio test (Bland tie-break: smallest basis column).
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for i in 0..m {
                let a = self.at(i, col);
                if a > TOL {
                    let ratio = self.at(i, self.n) / a;
                    let better = ratio < best_ratio - TOL
                        || (ratio < best_ratio + TOL
                            && leave.is_none_or(|l| self.basis[i] < self.basis[l]));
                    if better {
                        best_ratio = ratio;
                        leave = Some(i);
                    }
                }
            }
            let Some(row) = leave else {
                return Err(SolveError::Unbounded);
            };

            self.pivot(row, col);

            // Degeneracy watch: cost[n] is -objective and should be
            // non-decreasing as the objective falls.
            let obj = self.cost[self.n];
            if (obj - last_obj).abs() <= TOL {
                degenerate_run += 1;
                if degenerate_run >= DEGENERATE_LIMIT {
                    bland = true;
                }
            } else {
                degenerate_run = 0;
            }
            last_obj = obj;
        }
        Err(SolveError::IterationLimit)
    }
}

/// Solves `min c·y` s.t. `A·y = b`, `y ≥ 0` and returns the optimal `y`.
///
/// `slack_basis[i]`, when present, names a column of row `i` whose
/// coefficient is `+1` and which appears in no other row — a ready-made
/// initial basic variable (the `≤`-row slack emitted by
/// [`crate::standard`]). Rows without one receive a phase-1 artificial.
///
/// # Panics
/// Panics on dimension mismatches or negative `b`.
pub fn solve(
    a: &[Vec<f64>],
    b: &[f64],
    c: &[f64],
    slack_basis: &[Option<usize>],
) -> Result<Vec<f64>, SolveError> {
    solve_counted(a, b, c, slack_basis).map(|(y, _)| y)
}

/// [`solve`], additionally reporting pivot counts for telemetry
/// (`LpSolve` journal events carry `SolveStats::iterations`).
///
/// # Errors
/// Same failure modes as [`solve`].
///
/// # Panics
/// Panics on dimension mismatches or negative `b`.
pub fn solve_counted(
    a: &[Vec<f64>],
    b: &[f64],
    c: &[f64],
    slack_basis: &[Option<usize>],
) -> Result<(Vec<f64>, SolveStats), SolveError> {
    solve_counted_warm(a, b, c, slack_basis, None).map(|(y, stats, _)| (y, stats))
}

/// [`solve_counted`] with an optional warm-start basis, additionally
/// returning the final [`Basis`] so the caller can chain solves across a
/// family of structurally-identical models (the K ladder).
///
/// When `warm` is `Some`, the stored basis is injected by Gauss–Jordan
/// reduction and phase 1 is skipped entirely; if the injection turns out
/// numerically singular or primal-infeasible for the new RHS the solve
/// falls back to the cold two-phase path (correct, just slower), reported
/// via [`SolveStats::warm_started`].
///
/// # Errors
/// Same failure modes as [`solve`], plus [`SolveError::BasisMismatch`]
/// when the offered basis comes from a model with different dimensions.
///
/// # Panics
/// Panics on dimension mismatches or negative `b`.
pub fn solve_counted_warm(
    a: &[Vec<f64>],
    b: &[f64],
    c: &[f64],
    slack_basis: &[Option<usize>],
    warm: Option<&Basis>,
) -> CountedSolve {
    let m = a.len();
    let n = c.len();
    assert_eq!(b.len(), m, "b length mismatch");
    for (i, row) in a.iter().enumerate() {
        assert_eq!(row.len(), n, "row {i} length mismatch");
    }
    let mut flat = Vec::with_capacity(m * n);
    for row in a {
        flat.extend_from_slice(row);
    }
    solve_counted_warm_flat(&flat, m, n, b, c, slack_basis, warm)
}

/// The dense core over a flat row-major `m × n` matrix. Shared by the
/// slice-of-rows front above and [`crate::standard`]'s CSC dispatch
/// (which densifies only when the model is small enough for the tableau
/// to win).
///
/// # Errors
/// Same failure modes as [`solve_counted_warm`].
///
/// # Panics
/// Panics on dimension mismatches or negative `b`.
pub(crate) fn solve_counted_warm_flat(
    a_flat: &[f64],
    m: usize,
    n: usize,
    b: &[f64],
    c: &[f64],
    slack_basis: &[Option<usize>],
    warm: Option<&Basis>,
) -> CountedSolve {
    assert_eq!(a_flat.len(), m * n, "flat matrix size mismatch");
    assert_eq!(b.len(), m, "b length mismatch");
    assert_eq!(c.len(), n, "c length mismatch");
    assert_eq!(slack_basis.len(), m, "slack_basis length mismatch");
    assert!(b.iter().all(|&v| v >= 0.0), "standard form requires b >= 0");

    if let Some(basis) = warm {
        if basis.cols.len() != m || basis.n != n {
            return Err(SolveError::BasisMismatch);
        }
        if let Some(result) = try_warm(a_flat, m, n, b, c, basis) {
            return result;
        }
        // Injection failed structurally (artificial column, singular
        // pivot, or negative warm RHS): solve cold below.
    }

    solve_cold(a_flat, m, n, b, c, slack_basis)
}

/// Attempts a warm-started solve from `basis`. Returns `None` when the
/// basis cannot be injected (fall back to the cold path), `Some(result)`
/// when injection succeeded and phase 2 ran to completion or hit a
/// genuine solver error.
fn try_warm(
    a_flat: &[f64],
    m: usize,
    n: usize,
    b: &[f64],
    c: &[f64],
    basis: &Basis,
) -> Option<CountedSolve> {
    // Artificial columns in the stored basis (redundant source rows)
    // don't exist in the warm tableau.
    if basis.cols.iter().any(|&col| col >= n) {
        return None;
    }
    let mut cols = basis.cols.clone();
    cols.sort_unstable();
    if cols.windows(2).any(|w| w[0] == w[1]) {
        return None; // duplicate column: not a valid basis
    }

    let mut tab = Tableau::zeroed(m, n);
    for i in 0..m {
        let src = &a_flat[i * n..(i + 1) * n];
        let r = tab.row_mut(i);
        r[..n].copy_from_slice(src);
        r[n] = b[i];
    }

    // Gauss–Jordan on the basis columns. The row↔column pairing of the
    // stored basis is re-derived here with partial pivoting: the basis is
    // a *set* of columns, and fixing the old pairing could hit a zero
    // pivot that a permutation avoids. Columns already in reduced form
    // (untouched slacks, typically most of the basis between adjacent K
    // candidates) are recognized and skipped outright.
    let mut assigned = vec![false; m];
    for &col in &cols {
        let mut ready: Option<usize> = None;
        let mut best: Option<(usize, f64)> = None;
        for r in 0..m {
            if assigned[r] {
                continue;
            }
            let v = tab.at(r, col);
            if (v - 1.0).abs() <= TOL && (0..m).all(|k| k == r || tab.at(k, col).abs() <= TOL) {
                ready = Some(r);
                break;
            }
            if v.abs() > best.map_or(1e-7, |(_, bv): (usize, f64)| bv) {
                best = Some((r, v.abs()));
            }
        }
        if let Some(r) = ready {
            assigned[r] = true;
            tab.basis[r] = col;
            continue;
        }
        let Some((r, _)) = best else {
            return None; // singular injection
        };
        tab.pivot(r, col);
        assigned[r] = true;
    }

    // Primal feasibility of the injected basis for the new RHS.
    for i in 0..m {
        let rhs = tab.at(i, n);
        if rhs < -TOL {
            return None; // warm basis infeasible here: solve cold
        }
        if rhs < 0.0 {
            tab.row_mut(i)[n] = 0.0;
        }
    }

    // Phase 2 directly (no artificials exist in the warm tableau).
    tab.cost.fill(0.0);
    tab.cost[..n].copy_from_slice(c);
    for i in 0..m {
        let cb = c[tab.basis[i]];
        if cb != 0.0 {
            tab.price_out(i, cb);
        }
    }
    let allowed = vec![true; n];
    match tab.optimize(&allowed) {
        Ok(()) => {}
        // Unboundedness is a property of the model, not of the start.
        Err(SolveError::Unbounded) => return Some(Err(SolveError::Unbounded)),
        // Anything else: let the cold path have a clean try.
        Err(_) => return None,
    }

    let mut y = vec![0.0; n];
    for i in 0..m {
        y[tab.basis[i]] = tab.at(i, n);
    }
    let out_basis = Basis {
        cols: tab.basis.clone(),
        n,
    };
    Some(Ok((
        y,
        SolveStats {
            iterations: tab.pivots,
            warm_started: true,
            refactorizations: 0,
        },
        out_basis,
    )))
}

/// The cold two-phase path: phase-1 artificials where no slack basis is
/// available, then phase 2 on the true objective.
fn solve_cold(
    a_flat: &[f64],
    m: usize,
    n: usize,
    b: &[f64],
    c: &[f64],
    slack_basis: &[Option<usize>],
) -> CountedSolve {
    // Count artificials.
    let artificials: Vec<usize> = (0..m).filter(|&i| slack_basis[i].is_none()).collect();
    let n_art = artificials.len();
    let total = n + n_art;

    let mut tab = Tableau::zeroed(m, total);
    {
        let mut next_art = n;
        for i in 0..m {
            let src = &a_flat[i * n..(i + 1) * n];
            let r = tab.row_mut(i);
            r[..n].copy_from_slice(src);
            r[total] = b[i];
            match slack_basis[i] {
                Some(col) => tab.basis[i] = col,
                None => {
                    tab.row_mut(i)[next_art] = 1.0;
                    tab.basis[i] = next_art;
                    next_art += 1;
                }
            }
        }
    }

    // ---- Phase 1: minimize the sum of artificials. ----
    if n_art > 0 {
        for j in n..total {
            tab.cost[j] = 1.0;
        }
        // Make reduced costs of the basic artificials zero.
        for i in 0..m {
            if tab.basis[i] >= n {
                tab.price_out(i, 1.0);
            }
        }
        let allowed = vec![true; total];
        tab.optimize(&allowed)?;
        // cost[total] = -objective; feasible iff objective ≈ 0.
        if -tab.cost[total] > 1e-7 {
            return Err(SolveError::Infeasible);
        }
        // Drive any artificial still basic (at zero) out of the basis.
        for i in 0..m {
            if tab.basis[i] >= n {
                let col = (0..n).find(|&j| tab.at(i, j).abs() > 1e-7);
                if let Some(j) = col {
                    tab.pivot(i, j);
                }
                // If no structural column is available the row is redundant
                // (all-zero); the artificial stays basic at value 0, which
                // is harmless because artificials are barred from phase 2.
            }
        }
    }

    // ---- Phase 2: the true objective. ----
    tab.cost.fill(0.0);
    tab.cost[..n].copy_from_slice(c);
    for i in 0..m {
        let bcol = tab.basis[i];
        let cb = if bcol < n { c[bcol] } else { 0.0 };
        if cb != 0.0 {
            tab.price_out(i, cb);
        }
    }
    let mut allowed = vec![true; total];
    for j in n..total {
        allowed[j] = false; // artificials may not re-enter
    }
    tab.optimize(&allowed)?;

    // Extract the solution.
    let mut y = vec![0.0; n];
    for i in 0..m {
        if tab.basis[i] < n {
            y[tab.basis[i]] = tab.at(i, total);
        }
    }
    let basis = Basis {
        cols: tab.basis.clone(),
        n,
    };
    Ok((
        y,
        SolveStats {
            iterations: tab.pivots,
            warm_started: false,
            refactorizations: 0,
        },
        basis,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// min -x1 - 2x2 s.t. x1 + x2 + s = 3  → x2 = 3, obj -6.
    #[test]
    fn single_le_row() {
        let a = vec![vec![1.0, 1.0, 1.0]];
        let b = vec![3.0];
        let c = vec![-1.0, -2.0, 0.0];
        let y = solve(&a, &b, &c, &[Some(2)]).unwrap();
        assert!((y[1] - 3.0).abs() < 1e-9);
        assert!(y[0].abs() < 1e-9);
    }

    /// Equality row forcing phase 1.
    #[test]
    fn equality_needs_artificial() {
        // min x1 + x2 s.t. x1 + x2 = 4 → obj 4.
        let a = vec![vec![1.0, 1.0]];
        let b = vec![4.0];
        let c = vec![1.0, 1.0];
        let y = solve(&a, &b, &c, &[None]).unwrap();
        assert!((y[0] + y[1] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_system() {
        // x1 = 2 and x1 = 3 simultaneously.
        let a = vec![vec![1.0], vec![1.0]];
        let b = vec![2.0, 3.0];
        let c = vec![0.0];
        assert_eq!(
            solve(&a, &b, &c, &[None, None]),
            Err(SolveError::Infeasible)
        );
    }

    #[test]
    fn unbounded_problem() {
        // min -x1 s.t. x1 - s = 0 (x1 >= 0 unbounded upward).
        let a = vec![vec![1.0, -1.0]];
        let b = vec![0.0];
        let c = vec![-1.0, 0.0];
        assert_eq!(solve(&a, &b, &c, &[None]), Err(SolveError::Unbounded));
    }

    #[test]
    fn redundant_rows_are_tolerated() {
        // x1 + x2 = 2 stated twice.
        let a = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
        let b = vec![2.0, 2.0];
        let c = vec![1.0, 0.0];
        let y = solve(&a, &b, &c, &[None, None]).unwrap();
        assert!(y[0].abs() < 1e-9);
        assert!((y[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn counted_solve_reports_pivots() {
        let a = vec![vec![1.0, 1.0, 1.0]];
        let b = vec![3.0];
        let c = vec![-1.0, -2.0, 0.0];
        let (y, stats) = solve_counted(&a, &b, &c, &[Some(2)]).unwrap();
        assert!((y[1] - 3.0).abs() < 1e-9);
        assert!(stats.iterations >= 1, "at least one pivot expected");
    }

    #[test]
    fn warm_start_skips_phase_one_and_matches_cold() {
        // Equality system that needs phase 1 when cold.
        let a = vec![vec![1.0, 2.0, 0.0], vec![0.0, 1.0, 1.0]];
        let c = vec![1.0, 1.0, 1.0];
        let b1 = vec![4.0, 3.0];
        let (y1, s1, basis) = solve_counted_warm(&a, &b1, &c, &[None, None], None).unwrap();
        assert!(!s1.warm_started);
        // Same structure, new RHS: warm start from the previous basis.
        let b2 = vec![4.4, 3.3];
        let (y2, s2, _) = solve_counted_warm(&a, &b2, &c, &[None, None], Some(&basis)).unwrap();
        assert!(s2.warm_started, "warm injection should succeed");
        assert!(
            s2.iterations <= s1.iterations,
            "warm solve should not pivot more than cold ({} vs {})",
            s2.iterations,
            s1.iterations
        );
        // And the warm answer equals a cold solve of the same model.
        let (y2_cold, _, _) = solve_counted_warm(&a, &b2, &c, &[None, None], None).unwrap();
        for (w, c) in y2.iter().zip(&y2_cold) {
            assert!((w - c).abs() < 1e-9, "warm {w} vs cold {c}");
        }
        let _ = y1;
    }

    #[test]
    fn mismatched_basis_is_an_error_not_a_wrong_answer() {
        let a = vec![vec![1.0, 2.0]];
        let b = vec![4.0];
        let c = vec![1.0, 1.0];
        let (_, _, basis) = solve_counted_warm(&a, &b, &c, &[None], None).unwrap();
        // A structurally different model (extra column) must reject it.
        let a2 = vec![vec![1.0, 2.0, 1.0]];
        let c2 = vec![1.0, 1.0, 0.0];
        assert_eq!(
            solve_counted_warm(&a2, &b, &c2, &[Some(2)], Some(&basis)).unwrap_err(),
            SolveError::BasisMismatch
        );
    }

    #[test]
    fn infeasible_warm_basis_falls_back_to_cold() {
        // x1 <= b0 (slack s0), x1 >= b1 (surplus s1, needs phase 1);
        // min -x1, so the optimum vertex sits at x1 = b0 with basis
        // {x1, s1}.
        let a = vec![vec![1.0, 1.0, 0.0], vec![1.0, 0.0, -1.0]];
        let c = vec![-1.0, 0.0, 0.0];
        let (y1, _, basis) =
            solve_counted_warm(&a, &[4.0, 1.0], &c, &[Some(1), None], None).unwrap();
        assert!((y1[0] - 4.0).abs() < 1e-9);
        // b1 > b0 makes the whole model infeasible: the injected basis
        // prices a negative basic value, falls back cold, and the cold
        // path reports the genuine infeasibility (never a wrong answer).
        assert_eq!(
            solve_counted_warm(&a, &[4.0, 6.0], &c, &[Some(1), None], Some(&basis)).unwrap_err(),
            SolveError::Infeasible
        );
        // A feasible new RHS warm-starts and matches the cold answer.
        let (yw, sw, _) =
            solve_counted_warm(&a, &[2.0, 1.0], &c, &[Some(1), None], Some(&basis)).unwrap();
        assert!(sw.warm_started);
        let (yc, _, _) = solve_counted_warm(&a, &[2.0, 1.0], &c, &[Some(1), None], None).unwrap();
        for (w, cold) in yw.iter().zip(&yc) {
            assert!((w - cold).abs() < 1e-9);
        }
    }

    #[test]
    fn solution_satisfies_constraints() {
        // Random-ish 3x5 feasible system, checked for Ax=b.
        let a = vec![
            vec![1.0, 2.0, 0.0, 1.0, 0.0],
            vec![0.0, 1.0, 1.0, 0.0, 1.0],
            vec![2.0, 0.0, 1.0, 0.0, 0.0],
        ];
        let b = vec![4.0, 3.0, 5.0];
        let c = vec![1.0, 1.0, 1.0, 0.1, 0.1];
        let y = solve(&a, &b, &c, &[None, None, None]).unwrap();
        for (row, &bi) in a.iter().zip(&b) {
            let lhs: f64 = row.iter().zip(&y).map(|(a, y)| a * y).sum();
            assert!((lhs - bi).abs() < 1e-7, "row violated: {lhs} vs {bi}");
        }
        assert!(y.iter().all(|&v| v >= -1e-9));
    }
}
