//! Solution diagnostics: constraint activity and binding analysis.
//!
//! When a consolidation model comes back with a surprising active set, the
//! first question is *which capacity constraints are binding*. These
//! helpers evaluate a solution against a model row by row.

use crate::model::{Cmp, Model};
use crate::standard::Solution;

/// One constraint's evaluation at a solution point.
#[derive(Debug, Clone)]
pub struct ConstraintActivity {
    /// Constraint name (as given to [`Model::add_constraint`]).
    pub name: String,
    /// Left-hand-side value `Σ aᵢxᵢ`.
    pub lhs: f64,
    /// Right-hand side.
    pub rhs: f64,
    /// Slack toward the constraint boundary: non-negative when satisfied;
    /// `rhs − lhs` for `≤`, `lhs − rhs` for `≥`, `−|lhs − rhs|` for `=`
    /// deviations.
    pub slack: f64,
    /// Whether the constraint is active (slack within `tol`).
    pub binding: bool,
}

/// Evaluates every constraint of `model` at `solution`.
pub fn constraint_activity(
    model: &Model,
    solution: &Solution,
    tol: f64,
) -> Vec<ConstraintActivity> {
    model
        .constraints()
        .iter()
        .map(|c| {
            let lhs: f64 = c
                .terms
                .iter()
                .map(|&(v, a)| a * solution.values[v.index()])
                .sum();
            let slack = match c.cmp {
                Cmp::Le => c.rhs - lhs,
                Cmp::Ge => lhs - c.rhs,
                Cmp::Eq => -(lhs - c.rhs).abs(),
            };
            ConstraintActivity {
                name: c.name.clone(),
                lhs,
                rhs: c.rhs,
                slack,
                binding: slack.abs() <= tol,
            }
        })
        .collect()
}

/// The names of the binding constraints at a solution (the bottlenecks).
pub fn binding_constraints(model: &Model, solution: &Solution, tol: f64) -> Vec<String> {
    constraint_activity(model, solution, tol)
        .into_iter()
        .filter(|a| a.binding)
        .map(|a| a.name)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Sense;
    use crate::standard::solve_lp;

    #[test]
    fn identifies_the_binding_row() {
        // max 3x + 2y s.t. x + y <= 4 (binding), x + 3y <= 6 (slack).
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY, 3.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 2.0);
        m.add_constraint("sum", vec![(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
        m.add_constraint("weighted", vec![(x, 1.0), (y, 3.0)], Cmp::Le, 6.0);
        let sol = solve_lp(&m).unwrap(); // x=4, y=0
        let act = constraint_activity(&m, &sol, 1e-9);
        assert_eq!(act.len(), 2);
        assert!(act[0].binding, "x+y=4 is tight");
        assert!(!act[1].binding, "x+3y=4 < 6 has slack");
        assert!((act[1].slack - 2.0).abs() < 1e-9);
        assert_eq!(binding_constraints(&m, &sol, 1e-9), vec!["sum".to_string()]);
    }

    #[test]
    fn equality_deviation_is_negative_slack() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, 10.0, 1.0);
        m.add_constraint("fix", vec![(x, 1.0)], Cmp::Eq, 3.0);
        let sol = solve_lp(&m).unwrap();
        let act = constraint_activity(&m, &sol, 1e-9);
        assert!(act[0].binding);
        assert!(act[0].slack.abs() < 1e-9);
        // A point violating the equality shows negative slack.
        let fake = Solution {
            objective: 5.0,
            values: vec![5.0],
        };
        let act = constraint_activity(&m, &fake, 1e-9);
        assert!(act[0].slack < -1.9);
        assert!(!act[0].binding);
    }

    #[test]
    fn ge_slack_orientation() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, 10.0, 1.0);
        m.add_constraint("atleast", vec![(x, 1.0)], Cmp::Ge, 2.0);
        let sol = solve_lp(&m).unwrap(); // x = 2 (binding)
        let act = constraint_activity(&m, &sol, 1e-6);
        assert!(act[0].binding);
        let loose = Solution {
            objective: 7.0,
            values: vec![7.0],
        };
        let act = constraint_activity(&m, &loose, 1e-6);
        assert!((act[0].slack - 5.0).abs() < 1e-9);
    }
}
