//! Differential tests: the sparse revised simplex against the dense
//! tableau oracle on identical standard forms.
//!
//! The dense two-phase simplex is the solver of record for tiny models
//! and the reference implementation; the sparse core must agree with it
//! on objective value and solution vector to 1e-9 across randomized
//! LPs — including degenerate, unbounded, and infeasible instances — and
//! across warm-started chains.

use eprons_lp::{Cmp, LpEngine, Model, Sense, SolveError, Standardized};
use eprons_proplite::{cases, Gen};

/// A constraint row before insertion: `(terms, sense, rhs)`.
type Row = (Vec<(eprons_lp::VarId, f64)>, Cmp, f64);
/// `(objective, solution)` or the solve error, per engine.
type Outcome = Result<(f64, Vec<f64>), SolveError>;

/// A randomized minimization LP with mixed `≥`/`≤` rows and boxed
/// variables. Roughly one case in three is tightened toward
/// infeasibility, and duplicated rows inject degeneracy.
fn random_model(g: &mut Gen) -> Model {
    let nvars = g.usize_in(2, 7);
    let nrows = g.usize_in(1, 6);
    let mut m = Model::new(Sense::Minimize);
    let vars: Vec<_> = (0..nvars)
        .map(|i| {
            let cost = g.f64_in(-2.0, 5.0);
            let ub = g.f64_in(1.0, 8.0);
            m.add_var(format!("x{i}"), 0.0, ub, cost)
        })
        .collect();
    let mut rows: Vec<Row> = Vec::new();
    for _ in 0..nrows {
        let terms: Vec<_> = vars
            .iter()
            .filter_map(|&v| {
                if g.bool() {
                    Some((v, g.f64_in(-1.0, 3.0)))
                } else {
                    None
                }
            })
            .collect();
        if terms.is_empty() {
            continue;
        }
        let cmp = if g.bool() { Cmp::Ge } else { Cmp::Le };
        // Occasionally demand more than the box can deliver → infeasible.
        let rhs = if g.usize_in(0, 2) == 0 && cmp == Cmp::Ge {
            g.f64_in(20.0, 60.0)
        } else {
            g.f64_in(0.5, 6.0)
        };
        rows.push((terms, cmp, rhs));
    }
    // Duplicate a row now and then: ties in the ratio test exercise the
    // degenerate-pivot machinery of both cores.
    if let Some(first) = rows.first().cloned() {
        if g.bool() {
            rows.push(first);
        }
    }
    for (r, (terms, cmp, rhs)) in rows.into_iter().enumerate() {
        m.add_constraint(format!("r{r}"), terms, cmp, rhs);
    }
    m
}

/// An unbounded minimization: a free direction with negative cost and no
/// row limiting it from above.
fn unbounded_model(g: &mut Gen) -> Model {
    let mut m = Model::new(Sense::Minimize);
    let x = m.add_var("x", 0.0, f64::INFINITY, -g.f64_in(0.5, 3.0));
    let y = m.add_var("y", 0.0, 10.0, g.f64_in(0.1, 2.0));
    m.add_constraint("r0", vec![(x, 1.0), (y, 1.0)], Cmp::Ge, g.f64_in(0.5, 3.0));
    m
}

fn run_both(s: &Standardized) -> (Outcome, Outcome) {
    let dense = s
        .solve_warm_with(None, LpEngine::Dense)
        .map(|(sol, _, _)| (sol.objective, sol.values));
    let sparse = s
        .solve_warm_with(None, LpEngine::Sparse)
        .map(|(sol, _, _)| (sol.objective, sol.values));
    (dense, sparse)
}

#[test]
fn sparse_matches_dense_on_randomized_lps() {
    let mut solved = 0usize;
    let mut infeasible = 0usize;
    cases(256, |g, case| {
        let m = random_model(g);
        let s = Standardized::from_model(&m);
        let (dense, sparse) = run_both(&s);
        match (dense, sparse) {
            (Ok((od, vd)), Ok((os, vs))) => {
                assert!(
                    (od - os).abs() <= 1e-9,
                    "case {case}: objective dense={od} sparse={os}"
                );
                // Both optima must be feasible for the model and equally
                // good; the vertex itself may differ only when the face
                // is degenerate, so compare through the objective and
                // feasibility rather than demanding vertex identity…
                assert!(m.is_feasible(&vd, 1e-6), "case {case}: dense infeasible");
                assert!(m.is_feasible(&vs, 1e-6), "case {case}: sparse infeasible");
                // …but in practice both cores pivot identically (Dantzig
                // + same tie-breaks), so check the vectors too.
                for (i, (a, b)) in vd.iter().zip(&vs).enumerate() {
                    assert!(
                        (a - b).abs() <= 1e-9,
                        "case {case}: x{i} dense={a} sparse={b}"
                    );
                }
                solved += 1;
            }
            (Err(SolveError::Infeasible), Err(SolveError::Infeasible)) => infeasible += 1,
            (d, s) => panic!("case {case}: outcome mismatch dense={d:?} sparse={s:?}"),
        }
    });
    // The generator must actually exercise both regimes.
    assert!(solved >= 40, "too few solved cases: {solved}");
    assert!(infeasible >= 10, "too few infeasible cases: {infeasible}");
}

#[test]
fn sparse_matches_dense_on_unbounded_lps() {
    cases(32, |g, case| {
        let m = unbounded_model(g);
        let s = Standardized::from_model(&m);
        let (dense, sparse) = run_both(&s);
        assert!(
            matches!(dense, Err(SolveError::Unbounded)),
            "case {case}: dense={dense:?}"
        );
        assert!(
            matches!(sparse, Err(SolveError::Unbounded)),
            "case {case}: sparse={sparse:?}"
        );
    });
}

#[test]
fn warm_chains_agree_across_engines() {
    // Solve a base model on both engines, then perturb the objective and
    // warm-start each engine from the other's basis: the PR-5 warm-start
    // contract must hold regardless of which core produced the basis.
    cases(64, |g, case| {
        let m = random_model(g);
        let s = Standardized::from_model(&m);
        let dense = s.solve_warm_with(None, LpEngine::Dense);
        let sparse = s.solve_warm_with(None, LpEngine::Sparse);
        let (Ok((_, _, bd)), Ok((_, _, bs))) = (dense, sparse) else {
            return; // infeasible case: nothing to chain
        };
        // Cross-inject: dense basis into sparse solve and vice versa.
        let re_sparse = s
            .solve_warm_with(Some(&bd), LpEngine::Sparse)
            .expect("warm re-solve (sparse) failed");
        let re_dense = s
            .solve_warm_with(Some(&bs), LpEngine::Dense)
            .expect("warm re-solve (dense) failed");
        assert!(
            (re_sparse.0.objective - re_dense.0.objective).abs() <= 1e-9,
            "case {case}: warm objectives diverge"
        );
        assert!(
            re_sparse.1.warm_started && re_dense.1.warm_started,
            "case {case}: optimal basis should warm-start cleanly"
        );
        assert_eq!(
            re_sparse.1.iterations, 0,
            "case {case}: re-solving at the optimum should need no pivots"
        );
    });
}

#[test]
fn auto_engine_respects_cutoff() {
    // A tiny model stays on the dense path under Auto.
    let mut m = Model::new(Sense::Minimize);
    let x = m.add_var("x", 0.0, 10.0, 1.0);
    m.add_constraint("r", vec![(x, 1.0)], Cmp::Ge, 2.0);
    let s = Standardized::from_model(&m);
    assert_eq!(s.auto_engine(), LpEngine::Dense);
    let (sol, _, _) = s.solve_warm(None).unwrap();
    assert!((sol.objective - 2.0).abs() < 1e-9);
}
