//! Property tests for the warm-start surface (deterministic seeded cases
//! via `eprons-proplite`), over randomly generated path-routing programs
//! shaped like the fat-tree consolidation models the net crate builds:
//! a demand matrix of flows, each with a handful of candidate paths over
//! shared links, route-conservation equalities, and link-capacity rows.
//!
//! Invariants pinned here:
//! - a basis recycled onto the *same* standard form warm-starts and
//!   reproduces the cold optimum;
//! - a basis recycled onto a *structurally changed* model (a demand
//!   matrix with an extra flow or a different path fan-out) is rejected
//!   with the explicit [`SolveError::BasisMismatch`] — never silently
//!   misused;
//! - an infeasible MILP incumbent hint falls back to the cold search and
//!   returns the same optimum as no hint at all.

use eprons_lp::{
    solve_milp, solve_milp_with_incumbent, Cmp, MilpOptions, Model, Sense, SolveError, Standardized,
};
use eprons_proplite::{cases, Gen};

/// A random path-routing program: `nflows` demands, each choosing among
/// `npaths` candidate paths, every path crossing 2 of `nlinks` shared
/// links. Objective: minimize total link activation cost weighted by the
/// (random) demand matrix. Mirrors the structure of the consolidation
/// MILP's LP relaxation on a small fat tree.
fn random_routing_model(g: &mut Gen, nflows: usize, npaths: usize, integer: bool) -> Model {
    let nlinks = 6;
    let mut m = Model::new(Sense::Minimize);
    let cost = g.vec_f64(nlinks, 0.5, 3.0);
    // Per-link capacity rows are accumulated across flows.
    let mut cap_terms: Vec<Vec<(eprons_lp::VarId, f64)>> = vec![Vec::new(); nlinks];
    for f in 0..nflows {
        let demand = g.f64_in(0.2, 1.5);
        let mut route = Vec::with_capacity(npaths);
        for p in 0..npaths {
            // Path cost: sum of its two links' costs, scaled by demand.
            let l0 = g.usize_in(0, nlinks - 1);
            let l1 = g.usize_in(0, nlinks - 1);
            let c = demand * (cost[l0] + cost[l1]);
            let v = if integer {
                m.add_int_var(format!("z[{f},{p}]"), 0.0, 1.0, c)
            } else {
                m.add_var(format!("z[{f},{p}]"), 0.0, 1.0, c)
            };
            cap_terms[l0].push((v, demand));
            cap_terms[l1].push((v, demand));
            route.push((v, 1.0));
        }
        // Exactly one path per flow.
        m.add_constraint(format!("route[{f}]"), route, Cmp::Eq, 1.0);
    }
    for (l, terms) in cap_terms.into_iter().enumerate() {
        if terms.is_empty() {
            continue;
        }
        // Loose enough that the route constraints stay satisfiable.
        m.add_constraint(format!("cap[{l}]"), terms, Cmp::Le, nflows as f64 * 2.0);
    }
    m
}

#[test]
fn warm_basis_on_unchanged_model_reproduces_the_cold_optimum() {
    cases(64, |g, case| {
        let (nflows, npaths) = (g.usize_in(2, 4), g.usize_in(2, 3));
        let m = random_routing_model(g, nflows, npaths, false);
        let sf = Standardized::from_model(&m);
        let (cold, cold_stats, basis) = sf.solve_warm(None).expect("routing LP is feasible");
        assert!(!cold_stats.warm_started);
        let (warm, warm_stats, _) = sf
            .solve_warm(Some(&basis))
            .expect("recycling the optimal basis cannot fail");
        assert!(warm_stats.warm_started, "case {case}: hint was not used");
        assert!(
            (warm.objective - cold.objective).abs() < 1e-7,
            "case {case}: warm optimum {} != cold {}",
            warm.objective,
            cold.objective
        );
        // No assertion on pivot counts: on degenerate routing models a
        // recycled basis can legally pivot more than a cold start. The
        // warm-start contract is correctness, not per-instance speed.
    });
}

#[test]
fn stale_basis_on_structurally_changed_model_is_rejected() {
    cases(64, |g, case| {
        let (nflows, npaths) = (g.usize_in(2, 4), g.usize_in(2, 3));
        let a = random_routing_model(g, nflows, npaths, false);
        // Structural change: grow the demand matrix by one flow, or give
        // each flow one more candidate path. Either way the standard form
        // has different dimensions and the old basis must be refused.
        let b = if g.bool() {
            random_routing_model(g, nflows + 1, npaths, false)
        } else {
            random_routing_model(g, nflows, npaths + 1, false)
        };
        let (_, _, stale) = Standardized::from_model(&a)
            .solve_warm(None)
            .expect("routing LP is feasible");
        let err = Standardized::from_model(&b)
            .solve_warm(Some(&stale))
            .expect_err("stale basis must not be accepted");
        assert_eq!(
            err,
            SolveError::BasisMismatch,
            "case {case}: wrong rejection"
        );
    });
}

#[test]
fn infeasible_incumbent_hint_falls_back_to_the_cold_search() {
    cases(64, |g, case| {
        let nflows = g.usize_in(2, 3);
        let m = random_routing_model(g, nflows, 2, true);
        let opts = MilpOptions::default();
        let cold = solve_milp(&m, &opts).expect("routing MILP is feasible");
        // All-zeros violates every route[f] == 1 equality, so the hint is
        // infeasible and must be ignored, not trusted.
        let bad = vec![0.0; m.num_vars()];
        assert!(
            !m.is_feasible(&bad, 1e-9),
            "case {case}: hint accidentally feasible"
        );
        let hinted =
            solve_milp_with_incumbent(&m, &opts, Some(&bad)).expect("cold fallback must succeed");
        assert!(
            (hinted.objective - cold.objective).abs() < 1e-7,
            "case {case}: infeasible hint changed the optimum: {} vs {}",
            hinted.objective,
            cold.objective
        );
        assert!(m.is_feasible(&hinted.values, 1e-6), "case {case}");
        // A feasible hint (the cold optimum itself) must also keep the
        // optimum unchanged — it can only prune, never mislead.
        let seeded = solve_milp_with_incumbent(&m, &opts, Some(&cold.values))
            .expect("seeding with the optimum must succeed");
        assert!(
            (seeded.objective - cold.objective).abs() < 1e-7,
            "case {case}: feasible hint changed the optimum"
        );
    });
}
