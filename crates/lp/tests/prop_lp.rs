//! Property-based tests for the simplex / branch-and-bound substrate
//! (deterministic seeded cases via `eprons-proplite`).
//!
//! The key invariants: returned solutions are feasible; LP optima are at
//! least as good as any feasible point we can construct; MILP optima are
//! integral, feasible, and bounded by the LP relaxation.

use eprons_lp::standard::solve_lp;
use eprons_lp::{solve_milp, Cmp, MilpOptions, Model, Sense, SolveError};
use eprons_proplite::{cases, Gen};

/// A random bounded minimization LP:
/// `min c·x` s.t. `A x ≥ lo_i` (row sums force non-trivial solutions),
/// `0 ≤ x ≤ u`.
fn random_lp(
    g: &mut Gen,
    nvars: usize,
    nrows: usize,
) -> (Vec<f64>, Vec<Vec<f64>>, Vec<f64>, Vec<f64>) {
    let c = g.vec_f64(nvars, 0.1, 5.0); // c >= 0.1: bounded below
    let a: Vec<Vec<f64>> = (0..nrows).map(|_| g.vec_f64(nvars, 0.0, 3.0)).collect();
    let rhs = g.vec_f64(nrows, 0.5, 4.0);
    let ub = g.vec_f64(nvars, 1.0, 10.0);
    (c, a, rhs, ub)
}

fn build_model(
    c: &[f64],
    a: &[Vec<f64>],
    rhs: &[f64],
    ub: &[f64],
    integer: bool,
) -> (Model, Vec<eprons_lp::VarId>) {
    let mut m = Model::new(Sense::Minimize);
    let vars: Vec<_> = c
        .iter()
        .zip(ub)
        .enumerate()
        .map(|(i, (&ci, &ui))| {
            if integer {
                m.add_int_var(format!("x{i}"), 0.0, ui, ci)
            } else {
                m.add_var(format!("x{i}"), 0.0, ui, ci)
            }
        })
        .collect();
    for (r, (row, &b)) in a.iter().zip(rhs).enumerate() {
        // Skip all-zero rows (they'd be infeasible with b > 0).
        if row.iter().sum::<f64>() < 1e-9 {
            continue;
        }
        let terms: Vec<_> = vars.iter().zip(row).map(|(&v, &coef)| (v, coef)).collect();
        m.add_constraint(format!("r{r}"), terms, Cmp::Ge, b);
    }
    (m, vars)
}

#[test]
fn lp_solutions_are_feasible() {
    cases(64, |g, case| {
        let (c, a, rhs, ub) = random_lp(g, 4, 3);
        let (m, _) = build_model(&c, &a, &rhs, &ub, false);
        match solve_lp(&m) {
            Ok(sol) => {
                assert!(
                    m.is_feasible(&sol.values, 1e-6),
                    "case {case}: infeasible LP 'solution': {:?}",
                    sol.values
                );
                assert!((m.objective_value(&sol.values) - sol.objective).abs() < 1e-6);
            }
            Err(SolveError::Infeasible) => {
                // Acceptable: rows may genuinely exceed the box. Verify the
                // box's corner u cannot satisfy all rows.
                let corner: Vec<f64> = ub.clone();
                assert!(
                    !m.is_feasible(&corner, 1e-9),
                    "case {case}: solver claimed infeasible but the upper corner works"
                );
            }
            Err(e) => panic!("case {case}: unexpected error {e:?}"),
        }
    });
}

#[test]
fn lp_optimum_beats_random_feasible_points() {
    cases(64, |g, case| {
        let (c, a, rhs, ub) = random_lp(g, 4, 3);
        let fracs = g.vec_f64(4, 0.0, 1.0);
        let (m, _) = build_model(&c, &a, &rhs, &ub, false);
        if let Ok(sol) = solve_lp(&m) {
            // Construct a candidate point and, if feasible, check the
            // solver's objective is no worse.
            let candidate: Vec<f64> = ub.iter().zip(&fracs).map(|(&u, &f)| u * f).collect();
            if m.is_feasible(&candidate, 1e-9) {
                let cand_obj = m.objective_value(&candidate);
                assert!(
                    sol.objective <= cand_obj + 1e-6,
                    "case {case}: optimum {} beaten by candidate {}",
                    sol.objective,
                    cand_obj
                );
            }
        }
    });
}

#[test]
fn milp_solutions_are_integral_and_bounded_by_relaxation() {
    cases(64, |g, case| {
        let (c, a, rhs, ub) = random_lp(g, 3, 2);
        let (mi, _) = build_model(&c, &a, &rhs, &ub, true);
        let (ml, _) = build_model(&c, &a, &rhs, &ub, false);
        match solve_milp(&mi, &MilpOptions::default()) {
            Ok(sol) => {
                assert!(mi.is_feasible(&sol.values, 1e-6), "case {case}");
                for &v in &sol.values {
                    assert!(
                        (v - v.round()).abs() < 1e-6,
                        "case {case}: non-integral {v}"
                    );
                }
                // Relaxation is a lower bound for minimization.
                if let Ok(rel) = solve_lp(&ml) {
                    assert!(
                        sol.objective >= rel.objective - 1e-6,
                        "case {case}: MILP {} below LP bound {}",
                        sol.objective,
                        rel.objective
                    );
                }
            }
            Err(SolveError::Infeasible) => {
                // Then rounding the LP point up must also fail or the LP
                // itself must be infeasible — weak sanity check only: the
                // all-up corner must violate something.
                let corner: Vec<f64> = ub.iter().map(|u| u.ceil()).collect();
                let _ = corner; // integral corners may still be feasible in
                                // pathological float cases; skip hard check.
            }
            Err(e) => panic!("case {case}: unexpected error {e:?}"),
        }
    });
}

#[test]
fn maximization_mirrors_minimization() {
    cases(64, |g, case| {
        let (c, a, rhs, ub) = random_lp(g, 3, 2);
        // max c·x ≡ -min (-c)·x on the same feasible set.
        let neg: Vec<f64> = c.iter().map(|x| -x).collect();
        let (mn, _) = build_model(&neg, &a, &rhs, &ub, false);
        // Build the Maximize twin directly.
        let mx = {
            let mut m = Model::new(Sense::Maximize);
            let vars: Vec<_> = c
                .iter()
                .zip(&ub)
                .enumerate()
                .map(|(i, (&ci, &ui))| m.add_var(format!("x{i}"), 0.0, ui, ci))
                .collect();
            for (r, (row, &b)) in a.iter().zip(&rhs).enumerate() {
                if row.iter().sum::<f64>() < 1e-9 {
                    continue;
                }
                let terms: Vec<_> = vars.iter().zip(row).map(|(&v, &co)| (v, co)).collect();
                m.add_constraint(format!("r{r}"), terms, Cmp::Ge, b);
            }
            m
        };
        match (solve_lp(&mx), solve_lp(&mn)) {
            (Ok(a_), Ok(b_)) => {
                assert!((a_.objective + b_.objective).abs() < 1e-6, "case {case}")
            }
            (Err(SolveError::Infeasible), Err(SolveError::Infeasible)) => {}
            (Err(SolveError::Unbounded), _) | (_, Err(SolveError::Unbounded)) => {}
            (x, y) => panic!("case {case}: asymmetric outcomes {x:?} vs {y:?}"),
        }
    });
}
