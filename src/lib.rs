//! # eprons-repro — facade crate
//!
//! Re-exports the whole EPRONS reproduction workspace behind one crate so
//! examples and integration tests can `use eprons_repro::...`.
//!
//! See the `README.md` for a tour and `DESIGN.md` for the system inventory.

pub use eprons_core as core;
pub use eprons_lp as lp;
pub use eprons_net as net;
pub use eprons_num as num;
pub use eprons_obs as obs;
pub use eprons_server as server;
pub use eprons_sim as sim;
pub use eprons_topo as topo;
pub use eprons_workload as workload;
